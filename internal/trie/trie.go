// Package trie implements the paper's global reference partitioner
// (Algorithm 1, "Partition(p, n, d)"): given complete knowledge of the data
// keys and the peer population, it recursively bisects the key space so that
// every resulting partition holds at most dmax keys and is served by at
// least nmin replica peers. The distributed construction protocol never has
// this global knowledge; the trie produced here defines the *optimal*
// partitioning against which the quality of the decentralized outcome is
// measured (Section 4.4).
package trie

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pgrid/internal/keyspace"
)

// Params are the load-balancing targets of Algorithm 1.
type Params struct {
	// MaxKeys is d_max, the maximal storage load (number of keys) a
	// partition may hold before it must be split further.
	MaxKeys int
	// MinReplicas is n_min, the minimal number of replica peers that must
	// remain associated with every partition.
	MinReplicas int
	// MaxDepth bounds the recursion (0 means 64, the maximal key depth).
	MaxDepth int
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	if p.MaxKeys <= 0 {
		return errors.New("trie: MaxKeys must be positive")
	}
	if p.MinReplicas <= 0 {
		return errors.New("trie: MinReplicas must be positive")
	}
	if p.MaxDepth < 0 || p.MaxDepth > 64 {
		return errors.New("trie: MaxDepth must be in [0,64]")
	}
	return nil
}

// maxDepth returns the effective recursion bound.
func (p Params) maxDepth() int {
	if p.MaxDepth == 0 {
		return 64
	}
	return p.MaxDepth
}

// Node is one node of the reference partition trie. Leaves carry the peer
// allocation; inner nodes only structure the key space.
type Node struct {
	// Path identifies the partition.
	Path keyspace.Path
	// Keys is the number of data keys falling into the partition.
	Keys int
	// Peers is the (possibly fractional) number of peers Algorithm 1
	// assigns to the partition; meaningful at leaves.
	Peers float64
	// Left and Right are the sub-partitions (nil at leaves).
	Left, Right *Node
}

// IsLeaf reports whether the node is a leaf of the partition trie.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is the result of running the global partitioner.
type Tree struct {
	Root   *Node
	Params Params
	// TotalKeys and TotalPeers echo the inputs.
	TotalKeys  int
	TotalPeers float64
}

// Leaves returns the leaf nodes in key order (left to right).
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// Allocation is the peer allocation of one partition, the unit of the
// deviation metric.
type Allocation struct {
	Path  keyspace.Path
	Keys  int
	Peers float64
}

// Allocations returns the per-partition peer allocation in key order.
func (t *Tree) Allocations() []Allocation {
	leaves := t.Leaves()
	out := make([]Allocation, len(leaves))
	for i, l := range leaves {
		out[i] = Allocation{Path: l.Path, Keys: l.Keys, Peers: l.Peers}
	}
	return out
}

// Paths returns the leaf paths in key order.
func (t *Tree) Paths() []keyspace.Path {
	leaves := t.Leaves()
	out := make([]keyspace.Path, len(leaves))
	for i, l := range leaves {
		out[i] = l.Path
	}
	return out
}

// Depths returns the minimum, mean and maximum leaf depth of the trie.
func (t *Tree) Depths() (min int, mean float64, max int) {
	leaves := t.Leaves()
	if len(leaves) == 0 {
		return 0, 0, 0
	}
	min = leaves[0].Path.Depth()
	for _, l := range leaves {
		d := l.Path.Depth()
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		mean += float64(d)
	}
	return min, mean / float64(len(leaves)), max
}

// String renders the trie compactly for diagnostics.
func (t *Tree) String() string {
	var b strings.Builder
	for _, a := range t.Allocations() {
		fmt.Fprintf(&b, "%s: keys=%d peers=%.2f\n", a.Path, a.Keys, a.Peers)
	}
	return b.String()
}

// Build runs Algorithm 1 on the global key multiset with n peers. The keys
// may contain duplicates (several data items can share a key). Build never
// fails for valid parameters; if the idealizing assumption
// keys/peers <= MaxKeys/(2*MinReplicas) does not hold it produces the
// best-effort partitioning of the paper.
func Build(keys keyspace.Keys, peers float64, params Params) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if peers <= 0 {
		return nil, errors.New("trie: need a positive number of peers")
	}
	sorted := make(keyspace.Keys, len(keys))
	copy(sorted, keys)
	sorted.Sort()
	root := build(sorted, keyspace.Root, peers, params)
	return &Tree{Root: root, Params: params, TotalKeys: len(keys), TotalPeers: peers}, nil
}

// build is the recursive bisection of Algorithm 1. keys are sorted and all
// share the prefix path.
func build(keys keyspace.Keys, path keyspace.Path, peers float64, params Params) *Node {
	node := &Node{Path: path, Keys: len(keys), Peers: peers}
	// Line 1: only split while the partition is overloaded and enough peers
	// remain to give both halves the minimal replication.
	if len(keys) <= params.MaxKeys || peers < 2*float64(params.MinReplicas) || path.Depth() >= params.maxDepth() {
		return node
	}
	left, right := splitKeys(keys, path)
	dl, dr := len(left), len(right)
	if dl == 0 && dr == 0 {
		return node
	}
	nmin := float64(params.MinReplicas)
	total := float64(dl + dr)
	nl := peers * float64(dl) / total
	nr := peers - nl
	// Lines 2-11: if proportional assignment would leave either side below
	// the minimal replication, pin the lighter side to n_min.
	if nl < nmin || nr < nmin {
		if dl <= dr {
			nl = nmin
			nr = peers - nl
		} else {
			nr = nmin
			nl = peers - nr
		}
	}
	node.Left = build(left, path.Child(0), nl, params)
	node.Right = build(right, path.Child(1), nr, params)
	node.Peers = 0 // peers live at the leaves once split
	return node
}

// splitKeys partitions sorted keys sharing prefix path into those falling
// into the left (bit 0) and right (bit 1) sub-partition.
func splitKeys(keys keyspace.Keys, path keyspace.Path) (left, right keyspace.Keys) {
	bit := path.Depth()
	idx := sort.Search(len(keys), func(i int) bool {
		if keys[i].Len <= bit {
			return false // treat short keys (== path) as belonging to the left half
		}
		return keys[i].Bit(bit) == 1
	})
	return keys[:idx], keys[idx:]
}

// PartitionFor returns the leaf path responsible for the given key.
func (t *Tree) PartitionFor(k keyspace.Key) keyspace.Path {
	n := t.Root
	for !n.IsLeaf() {
		bit := n.Path.Depth()
		if k.Len > bit && k.Bit(bit) == 1 {
			n = n.Right
		} else {
			n = n.Left
		}
	}
	return n.Path
}

// MaxLeafKeys returns the largest number of keys held by any leaf.
func (t *Tree) MaxLeafKeys() int {
	max := 0
	for _, l := range t.Leaves() {
		if l.Keys > max {
			max = l.Keys
		}
	}
	return max
}

// MinLeafPeers returns the smallest peer allocation of any leaf.
func (t *Tree) MinLeafPeers() float64 {
	leaves := t.Leaves()
	if len(leaves) == 0 {
		return 0
	}
	min := leaves[0].Peers
	for _, l := range leaves {
		if l.Peers < min {
			min = l.Peers
		}
	}
	return min
}
