package sim

import (
	"os"
	"runtime"
	"testing"
	"time"

	"pgrid/internal/churn"
	"pgrid/internal/overlay"
	"pgrid/internal/workload"
)

// footprintPeers is the population the footprint benchmark builds. Large
// enough that fixed experiment overhead (graph, slices, the test binary's
// own allocations) is amortised into noise, small enough to rebuild per
// benchmark iteration.
const footprintPeers = 2000

// BenchmarkSimPeerFootprint measures the retained heap per simulated peer
// right after experiment construction — the number that decides how many
// peers one pgridsim process can hold. It reports bytes/peer as a custom
// metric so benchdiff and the nightly logs track the memory diet
// (per-peer RNG state, digest-tree keying, routing-ref interning) instead
// of only wall-clock time.
func BenchmarkSimPeerFootprint(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Peers = footprintPeers
	cfg.Distribution = workload.Uniform{}

	var perPeer float64
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		perPeer = float64(after.HeapAlloc-before.HeapAlloc) / footprintPeers
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perPeer, "bytes/peer")
}

// TestSoak10kPeerTimeline pushes the in-process simulator an order of
// magnitude past the paper's 296-peer PlanetLab deployment: 10,000 peers
// through the full join → construct → query → churn timeline. It exists to
// prove the sim's per-peer footprint and the overlay's round-based
// construction hold up at four-digit scale, so it only runs in the nightly
// soak job (PGRID_SOAK=1) — the populated experiment alone holds ~10^5
// keys and the run takes minutes.
func TestSoak10kPeerTimeline(t *testing.T) {
	if os.Getenv("PGRID_SOAK") == "" {
		t.Skip("10k-peer timeline soak; set PGRID_SOAK=1 to run")
	}
	cfg := TimelineConfig{
		Experiment: Config{
			Peers:        10000,
			KeysPerPeer:  10,
			Distribution: workload.Uniform{},
			Overlay: overlay.Config{
				MaxKeys:     50,
				MinReplicas: 5,
				MaxRefs:     3,
			},
			MaxRounds: 120,
			Queries:   200,
			Degree:    6,
			Seed:      101,
		},
		JoinEnd:      20 * time.Minute,
		ConstructEnd: 80 * time.Minute,
		QueryEnd:     110 * time.Minute,
		ChurnEnd:     130 * time.Minute,
		// One query per peer every ~30 virtual minutes keeps the absolute
		// query count (~10k over the operational phases) meaningful without
		// dominating the wall-clock budget.
		QueryInterval:       30 * time.Minute,
		MaintenanceInterval: 20 * time.Minute,
		Churn:               churn.PaperModel(),
		HopLatency:          time.Second,
		Step:                time.Minute,
	}
	start := time.Now()
	res, err := RunTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-peer timeline completed in %v", time.Since(start))
	t.Logf("%s", res.Summary())

	if res.SuccessBeforeChurn < 0.9 {
		t.Errorf("pre-churn query success %.3f < 0.9 at 10k peers", res.SuccessBeforeChurn)
	}
	if res.SuccessDuringChurn < 0.7 {
		t.Errorf("during-churn query success %.3f < 0.7 at 10k peers", res.SuccessDuringChurn)
	}
	if res.Construction == nil || res.Construction.Replication.MeanReplicas < 1 {
		t.Error("construction produced no replication at 10k peers")
	}
	var mem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mem)
	t.Logf("post-run heap: %.1f MiB (%.0f bytes/peer)",
		float64(mem.HeapAlloc)/(1<<20), float64(mem.HeapAlloc)/10000)
}
