package sim

import (
	"fmt"
	"strings"

	"pgrid/internal/overlay"
	"pgrid/internal/stats"
	"pgrid/internal/workload"
)

// This file provides the parameter sweeps behind Figure 6 of the paper:
// load-balancing deviation and communication cost of the decentralized
// construction across key distributions, peer populations, replication
// factors, sample sizes and probability functions (theory vs. heuristics).

// SweepPoint is one measured cell of a Figure 6 sweep.
type SweepPoint struct {
	// Distribution is the workload label (U, P0.5, P1.0, P1.5, N, A).
	Distribution string
	// Variant identifies the swept parameter value (population size,
	// n_min, d_max factor, or "theory"/"heuristic").
	Variant string
	// Deviation is the mean load-balancing deviation over the repetitions.
	Deviation float64
	// DeviationStd is its standard deviation.
	DeviationStd float64
	// InteractionsPerPeer and KeysMovedPerPeer are the communication-cost
	// metrics (Figures 6(e) and 6(f)).
	InteractionsPerPeer float64
	KeysMovedPerPeer    float64
}

// SweepConfig parameterises a Figure 6 sweep.
type SweepConfig struct {
	// Repetitions is the number of runs averaged per cell (paper: 10).
	Repetitions int
	// Peers is the base peer population.
	Peers int
	// KeysPerPeer is the number of items per peer (paper: 10).
	KeysPerPeer int
	// MinReplicas is n_min (paper: 5 unless swept).
	MinReplicas int
	// MaxKeysFactor sets d_max = MaxKeysFactor * n_min (paper: 10 unless
	// swept).
	MaxKeysFactor int
	// Seed drives the sweep.
	Seed int64
}

// DefaultSweepConfig returns a sweep configuration matching the paper's
// simulation setup but with a repetition count that keeps runtimes modest.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Repetitions:   3,
		Peers:         256,
		KeysPerPeer:   10,
		MinReplicas:   5,
		MaxKeysFactor: 10,
		Seed:          1,
	}
}

// runCell runs Repetitions experiments for one configuration and aggregates
// them into a SweepPoint.
func runCell(cfg Config, reps int, dist workload.Distribution, variant string) (SweepPoint, error) {
	var devs, inters, keys []float64
	for rep := 0; rep < reps; rep++ {
		runCfg := cfg
		runCfg.Distribution = dist
		runCfg.Seed = cfg.Seed + int64(rep)*7001
		runCfg.Queries = 0
		res, err := Run(runCfg)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("sim: %s/%s rep %d: %w", dist.Name(), variant, rep, err)
		}
		devs = append(devs, res.Deviation)
		inters = append(inters, res.InteractionsPerPeer)
		keys = append(keys, res.KeysMovedPerPeer)
	}
	return SweepPoint{
		Distribution:        dist.Name(),
		Variant:             variant,
		Deviation:           stats.Mean(devs),
		DeviationStd:        stats.Std(devs),
		InteractionsPerPeer: stats.Mean(inters),
		KeysMovedPerPeer:    stats.Mean(keys),
	}, nil
}

// baseConfig builds the experiment configuration for a sweep cell.
func (sc SweepConfig) baseConfig(peers, nmin, maxKeysFactor int, heuristic bool) Config {
	return Config{
		Peers:       peers,
		KeysPerPeer: sc.KeysPerPeer,
		Overlay: overlay.Config{
			MaxKeys:      maxKeysFactor * nmin,
			MinReplicas:  nmin,
			UseHeuristic: heuristic,
			MaxRefs:      3,
		},
		MaxRounds: 100,
		Degree:    6,
		Seed:      sc.Seed,
	}
}

// SweepPopulations reproduces Figure 6(a), 6(e) and 6(f): for every
// distribution and every population size, measure deviation, interactions
// per peer and keys moved per peer.
func SweepPopulations(sc SweepConfig, populations []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, dist := range workload.PaperSet() {
		for _, n := range populations {
			cfg := sc.baseConfig(n, sc.MinReplicas, sc.MaxKeysFactor, false)
			pt, err := runCell(cfg, sc.Repetitions, dist, fmt.Sprintf("n=%d", n))
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// SweepReplication reproduces Figure 6(b): deviation for different required
// replication factors n_min.
func SweepReplication(sc SweepConfig, nmins []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, dist := range workload.PaperSet() {
		for _, nmin := range nmins {
			cfg := sc.baseConfig(sc.Peers, nmin, sc.MaxKeysFactor, false)
			pt, err := runCell(cfg, sc.Repetitions, dist, fmt.Sprintf("nmin=%d", nmin))
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// SweepSampleSize reproduces Figure 6(c): deviation for different d_max
// factors (which control how many samples a partition holds before it is
// split, i.e. the sample size available to the estimators).
func SweepSampleSize(sc SweepConfig, factors []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, dist := range workload.PaperSet() {
		for _, f := range factors {
			cfg := sc.baseConfig(sc.Peers, sc.MinReplicas, f, false)
			pt, err := runCell(cfg, sc.Repetitions, dist, fmt.Sprintf("dmax=%dxnmin", f))
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// SweepTheoryVsHeuristics reproduces Figure 6(d): deviation with the
// analytically derived probabilities versus the naive heuristic ones, for
// n_min = 5 and 10.
func SweepTheoryVsHeuristics(sc SweepConfig, nmins []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, dist := range workload.PaperSet() {
		for _, nmin := range nmins {
			for _, heuristic := range []bool{false, true} {
				label := "theory"
				if heuristic {
					label = "heuristic"
				}
				cfg := sc.baseConfig(sc.Peers, nmin, sc.MaxKeysFactor, heuristic)
				pt, err := runCell(cfg, sc.Repetitions, dist, fmt.Sprintf("nmin=%d/%s", nmin, label))
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// FormatSweep renders sweep points as an aligned table with the given value
// extractor, mirroring the bar charts of Figure 6.
func FormatSweep(points []SweepPoint, metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %12s\n", "dist", "variant", metric)
	for _, p := range points {
		v := p.Deviation
		switch metric {
		case "interactions":
			v = p.InteractionsPerPeer
		case "keysmoved":
			v = p.KeysMovedPerPeer
		}
		fmt.Fprintf(&b, "%-6s %-16s %12.3f\n", p.Distribution, p.Variant, v)
	}
	return b.String()
}
