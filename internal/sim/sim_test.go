package sim

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"pgrid/internal/churn"
	"pgrid/internal/overlay"
	"pgrid/internal/workload"
)

// smallConfig returns a configuration small enough for unit tests but large
// enough to exercise the full pipeline.
func smallConfig(seed int64) Config {
	return Config{
		Peers:        64,
		KeysPerPeer:  10,
		Distribution: workload.Uniform{},
		Overlay: overlay.Config{
			MaxKeys:     20,
			MinReplicas: 2,
			MaxRefs:     3,
		},
		MaxRounds: 60,
		Queries:   60,
		Degree:    5,
		Seed:      seed,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: 1, KeysPerPeer: 1, Distribution: workload.Uniform{}}); err == nil {
		t.Error("expected error for too few peers")
	}
	if _, err := New(Config{Peers: 10, KeysPerPeer: 0, Distribution: workload.Uniform{}}); err == nil {
		t.Error("expected error for zero keys per peer")
	}
	if _, err := New(Config{Peers: 10, KeysPerPeer: 5}); err == nil {
		t.Error("expected error for missing distribution")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deviation <= 0 || math.IsNaN(res.Deviation) {
		t.Errorf("deviation = %v", res.Deviation)
	}
	if res.Deviation > 3 {
		t.Errorf("deviation %v unreasonably high for a uniform workload", res.Deviation)
	}
	if res.InteractionsPerPeer <= 0 || res.KeysMovedPerPeer <= 0 {
		t.Errorf("communication metrics missing: %+v", res)
	}
	if res.MeanPathLength <= 0 {
		t.Error("construction did not deepen any path")
	}
	if res.QuerySuccessRate < 0.85 {
		t.Errorf("query success rate %v too low", res.QuerySuccessRate)
	}
	if res.MeanQueryHops <= 0 || res.MeanQueryHops > res.MeanPathLength+1 {
		t.Errorf("hops %v implausible for path length %v", res.MeanQueryHops, res.MeanPathLength)
	}
	if res.DistinctPaths < 2 {
		t.Errorf("expected multiple partitions, got %d", res.DistinctPaths)
	}
	if res.String() == "" {
		t.Error("result rendering empty")
	}
}

func TestRunWithChurn(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Overlay.MinReplicas = 3
	cfg.OfflineFraction = 0.25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuerySuccessRate < 0.6 {
		t.Errorf("query success under churn %v too low", res.QuerySuccessRate)
	}
}

func TestSkewedDeviationLargerThanUniform(t *testing.T) {
	// Figure 6(a): skewed distributions are harder to balance than the
	// uniform one.
	uniCfg := smallConfig(3)
	uniCfg.Queries = 0
	uni, err := Run(uniCfg)
	if err != nil {
		t.Fatal(err)
	}
	skewCfg := smallConfig(3)
	skewCfg.Queries = 0
	skewCfg.Distribution = workload.NewNormal()
	skew, err := Run(skewCfg)
	if err != nil {
		t.Fatal(err)
	}
	if skew.Deviation < uni.Deviation*0.8 {
		t.Errorf("expected skewed deviation (%v) to be at least comparable to uniform (%v)", skew.Deviation, uni.Deviation)
	}
}

func TestHopsAboutHalfPathLength(t *testing.T) {
	// Section 5.2: the number of query hops is about half the mean path
	// length.
	cfg := smallConfig(4)
	cfg.Peers = 96
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanQueryHops > res.MeanPathLength {
		t.Errorf("hops %v should not exceed path length %v", res.MeanQueryHops, res.MeanPathLength)
	}
	ratio := res.MeanQueryHops / res.MeanPathLength
	if ratio < 0.2 || ratio > 0.95 {
		t.Errorf("hops/path-length ratio %v outside plausible band", ratio)
	}
}

func TestExperimentPhasesIndividually(t *testing.T) {
	ctx := context.Background()
	e, err := New(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Graph.Connected() {
		t.Error("bootstrap overlay should be connected")
	}
	if err := e.Replicate(ctx); err != nil {
		t.Fatal(err)
	}
	rounds := e.Construct(ctx)
	if rounds == 0 {
		t.Error("construction should need at least one round")
	}
	ref, err := e.ReferenceTree()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Leaves()) < 2 {
		t.Error("reference trie should split the key space")
	}
	res, err := e.Measure(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds {
		t.Error("rounds not propagated")
	}
	offline := e.TakeOffline(0.5)
	if len(offline) != len(e.Peers)/2 {
		t.Errorf("offline peers = %d", len(offline))
	}
	if got := len(e.onlinePeers()); got != len(e.Peers)-len(offline) {
		t.Errorf("online peers = %d", got)
	}
	if sr, _ := e.RunQueries(ctx, 0); sr != 0 {
		t.Error("zero queries should yield zero success rate")
	}
}

func TestSweepPopulationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	sc := SweepConfig{Repetitions: 1, Peers: 48, KeysPerPeer: 8, MinReplicas: 2, MaxKeysFactor: 8, Seed: 7}
	pts, err := SweepPopulations(sc, []int{48})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(workload.PaperSet()) {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Deviation <= 0 || math.IsNaN(p.Deviation) {
			t.Errorf("%s/%s: deviation %v", p.Distribution, p.Variant, p.Deviation)
		}
		if p.InteractionsPerPeer <= 0 {
			t.Errorf("%s/%s: no interactions", p.Distribution, p.Variant)
		}
	}
	if FormatSweep(pts, "deviation") == "" || FormatSweep(pts, "interactions") == "" || FormatSweep(pts, "keysmoved") == "" {
		t.Error("sweep formatting empty")
	}
}

func TestSweepTheoryVsHeuristicsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	sc := SweepConfig{Repetitions: 1, Peers: 48, KeysPerPeer: 8, MinReplicas: 2, MaxKeysFactor: 8, Seed: 8}
	pts, err := SweepTheoryVsHeuristics(sc, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*len(workload.PaperSet()) {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestTimelineSmall(t *testing.T) {
	cfg := TimelineConfig{
		Experiment:    smallConfig(9),
		JoinEnd:       20 * time.Minute,
		ConstructEnd:  60 * time.Minute,
		QueryEnd:      80 * time.Minute,
		ChurnEnd:      100 * time.Minute,
		QueryInterval: 2 * time.Minute,
		Churn:         churn.PaperModel(),
		HopLatency:    2 * time.Second,
		Step:          time.Minute,
	}
	res, err := RunTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peerBuckets := res.Peers.Buckets()
	if len(peerBuckets) < 90 {
		t.Fatalf("peer series too short: %d buckets", len(peerBuckets))
	}
	// Figure 7 shape: the peer count ramps up during the join phase, stays
	// near the maximum during construction, and drops during churn.
	early := peerBuckets[2].Mean
	mid := peerBuckets[40].Mean
	late := peerBuckets[len(peerBuckets)-2].Mean
	if !(early < mid) {
		t.Errorf("peer count should ramp up: early %v vs mid %v", early, mid)
	}
	if !(late < mid) {
		t.Errorf("peer count should drop under churn: late %v vs mid %v", late, mid)
	}
	// Figure 8 shape: maintenance bandwidth peaks during construction and
	// falls off afterwards.
	mb := res.MaintenanceBandwidth.Buckets()
	var constructionPeak, tail float64
	for _, b := range mb {
		if b.Start < cfg.ConstructEnd && b.Sum > constructionPeak {
			constructionPeak = b.Sum
		}
		if b.Start >= cfg.QueryEnd && b.Sum > tail {
			tail = b.Sum
		}
	}
	if constructionPeak <= 0 {
		t.Error("no maintenance bandwidth recorded during construction")
	}
	if tail > constructionPeak {
		t.Errorf("maintenance bandwidth should decay after construction: peak %v tail %v", constructionPeak, tail)
	}
	// Figure 9: latency samples exist and are positive.
	latBuckets := res.QueryLatency.Buckets()
	if len(latBuckets) == 0 {
		t.Fatal("no latency samples")
	}
	for _, b := range latBuckets {
		if b.Mean < 0 {
			t.Errorf("negative latency at %v", b.Start)
		}
	}
	if res.Construction == nil {
		t.Fatal("construction metrics missing")
	}
	if res.SuccessBeforeChurn < 0.7 {
		t.Errorf("success before churn %v too low", res.SuccessBeforeChurn)
	}
	if res.Summary() == "" {
		t.Error("summary empty")
	}
}

// TestTimelineWithLiveWrites runs the timeline with the routed write
// workload and background maintenance enabled: writes must mostly succeed in
// both operational phases, and the read-your-writes probe must show that
// inserts converge to readable state even while peers churn.
func TestTimelineWithLiveWrites(t *testing.T) {
	cfg := TimelineConfig{
		Experiment:          smallConfig(10),
		JoinEnd:             20 * time.Minute,
		ConstructEnd:        60 * time.Minute,
		QueryEnd:            80 * time.Minute,
		ChurnEnd:            100 * time.Minute,
		QueryInterval:       2 * time.Minute,
		WriteInterval:       4 * time.Minute,
		MaintenanceInterval: 2 * time.Minute,
		Churn:               churn.PaperModel(),
		HopLatency:          2 * time.Second,
		Step:                time.Minute,
	}
	res, err := RunTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteSuccessBeforeChurn < 0.8 {
		t.Errorf("write success before churn %v too low", res.WriteSuccessBeforeChurn)
	}
	if res.WriteSuccessDuringChurn < 0.5 {
		t.Errorf("write success during churn %v too low", res.WriteSuccessDuringChurn)
	}
	if res.ReadYourWrites < 0.7 {
		t.Errorf("read-your-writes convergence %v too low", res.ReadYourWrites)
	}
	if got := res.Summary(); got == "" {
		t.Error("summary empty")
	} else if !strings.Contains(got, "write success") {
		t.Errorf("summary misses the write metrics: %q", got)
	}
}

func TestDefaultConfigsAreSane(t *testing.T) {
	c := DefaultConfig()
	if c.Peers != 256 || c.KeysPerPeer != 10 || c.Overlay.MinReplicas != 5 || c.Overlay.MaxKeys != 50 {
		t.Errorf("default config drifted from the paper's parameters: %+v", c)
	}
	tc := DefaultTimelineConfig()
	if tc.Experiment.Peers != 296 || tc.ChurnEnd != 530*time.Minute {
		t.Errorf("default timeline drifted from the paper's setup: %+v", tc)
	}
	sc := DefaultSweepConfig()
	if sc.Peers != 256 || sc.MinReplicas != 5 || sc.MaxKeysFactor != 10 {
		t.Errorf("default sweep drifted: %+v", sc)
	}
}

func TestRunWithBatchQueries(t *testing.T) {
	cfg := smallConfig(17)
	cfg.BatchQueries = true
	cfg.BatchSize = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuerySuccessRate < 0.85 {
		t.Errorf("batched query success rate %.2f below 0.85", res.QuerySuccessRate)
	}
	if res.MeanQueryHops <= 0 {
		t.Error("batched queries recorded no hops")
	}
	// Degenerate sizes fall back to the default batch size.
	e, err := New(smallConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Replicate(ctx); err != nil {
		t.Fatal(err)
	}
	e.Construct(ctx)
	if rate, _ := e.RunBatchQueries(ctx, 20, 0); rate < 0.8 {
		t.Errorf("default-size batch success rate %.2f below 0.8", rate)
	}
	if rate, _ := e.RunBatchQueries(ctx, 0, 8); rate != 0 {
		t.Errorf("zero queries should report rate 0, got %.2f", rate)
	}
}
