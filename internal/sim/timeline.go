package sim

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pgrid/internal/churn"
	"pgrid/internal/keyspace"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
	"pgrid/internal/stats"
	"pgrid/internal/workload"
)

// This file replays the PlanetLab experiment timeline of Section 5.1 with a
// virtual clock, producing the three time-series figures:
//
//	Figure 7 — number of participating peers over time,
//	Figure 8 — aggregate bandwidth (maintenance vs. queries),
//	Figure 9 — query latency mean and standard deviation.
//
// The phases follow the paper: peers join and form the unstructured overlay,
// replicate their data, construct the structured overlay, answer queries,
// and finally experience churn.

// TimelineConfig parameterises a timeline run.
type TimelineConfig struct {
	// Experiment is the underlying deployment configuration.
	Experiment Config
	// JoinEnd, ReplicateEnd, ConstructEnd, QueryEnd and ChurnEnd are the
	// phase boundaries (offsets from the experiment start). The paper uses
	// 100, 100, 300, 430 and 530 minutes; replication happens inside the
	// join phase (75–100 min).
	JoinEnd      time.Duration
	ConstructEnd time.Duration
	QueryEnd     time.Duration
	ChurnEnd     time.Duration
	// QueryInterval is the mean time between queries per peer (paper: a
	// query every 1–2 minutes per peer).
	QueryInterval time.Duration
	// WriteInterval is the mean time between routed live writes (Insert and
	// Delete) per peer during the operational phases. Zero disables the
	// write workload, reproducing the paper's read-only experiment.
	WriteInterval time.Duration
	// MaintenanceInterval is the virtual-time pause between background
	// maintenance ticks per peer (anti-entropy with a random replica plus
	// routing-reference probing) once the overlay is constructed. Zero
	// disables maintenance.
	MaintenanceInterval time.Duration
	// Churn is the churn model applied during the final phase.
	Churn churn.Model
	// RestartAt, when positive, runs the restart scenario: at this virtual
	// time a RestartFraction of the currently online peers crashes and
	// immediately restarts. With persistence configured on the experiment
	// (Config.DataDir) the restarted peers recover their durable state and
	// rejoin through the exact-delta sync path; without it they rejoin
	// empty and must be rebuilt by their replicas.
	RestartAt time.Duration
	// RestartFraction is the fraction of online peers restarted at
	// RestartAt (0 means 0.25).
	RestartFraction float64
	// HopLatency is the mean one-way latency per routing hop used to model
	// query response times (PlanetLab's shared nodes made this several
	// seconds).
	HopLatency time.Duration
	// Step is the virtual-clock resolution.
	Step time.Duration
}

// DefaultTimelineConfig returns the paper's timeline.
func DefaultTimelineConfig() TimelineConfig {
	cfg := DefaultConfig()
	cfg.Peers = 296 // the PlanetLab experiment ran with 296 peers
	cfg.Distribution = workload.NewTextCorpus(workload.DefaultCorpusConfig())
	return TimelineConfig{
		Experiment:    cfg,
		JoinEnd:       100 * time.Minute,
		ConstructEnd:  300 * time.Minute,
		QueryEnd:      430 * time.Minute,
		ChurnEnd:      530 * time.Minute,
		QueryInterval: 90 * time.Second,
		Churn:         churn.PaperModel(),
		HopLatency:    4 * time.Second,
		Step:          time.Minute,
	}
}

// TimelineResult holds the three time series plus the summary metrics the
// paper reports in the text of Section 5.2.
type TimelineResult struct {
	// Peers is the number of online peers per minute (Figure 7).
	Peers *stats.TimeSeries
	// MaintenanceBandwidth and QueryBandwidth are aggregate bytes/second
	// per minute (Figure 8).
	MaintenanceBandwidth *stats.TimeSeries
	QueryBandwidth       *stats.TimeSeries
	// QueryLatency collects per-query latencies in seconds (Figure 9).
	QueryLatency *stats.TimeSeries
	// Construction holds the quality metrics measured right after the
	// construction phase.
	Construction *Result
	// SuccessBeforeChurn and SuccessDuringChurn are query success rates in
	// the two operational phases.
	SuccessBeforeChurn, SuccessDuringChurn float64
	// WriteSuccessBeforeChurn and WriteSuccessDuringChurn are routed-write
	// (Insert/Delete) success rates in the two operational phases; both are
	// zero when the write workload is disabled.
	WriteSuccessBeforeChurn, WriteSuccessDuringChurn float64
	// ReadYourWrites is the fraction of sampled earlier inserts that a later
	// query read back — the timeline's convergence signal for live writes
	// under churn.
	ReadYourWrites float64
	// InSyncRounds, DeltaSyncs and FullSyncs classify the anti-entropy
	// rounds the maintenance ticks ran: root digests matched (nothing
	// moved), delta-proportional exchanges, and full-set transfers
	// (rebuilds or the legacy protocol). With the digest protocol the vast
	// majority of rounds should land in the first bucket.
	InSyncRounds, DeltaSyncs, FullSyncs float64
	// TombstonesPruned is the total number of tombstones the GC horizon
	// removed, and TombstonesHeld the number still held at the end of the
	// run (bounded when GC is on, growing with lifetime deletes otherwise).
	TombstonesPruned float64
	TombstonesHeld   int
	// RestartedPeers is the number of peers the restart scenario bounced
	// (zero when RestartAt is unset).
	RestartedPeers int
	// PostRestartInSyncRounds, PostRestartDeltaSyncs and
	// PostRestartFullSyncs classify the anti-entropy rounds the restarted
	// peers completed after coming back: with persistence the rejoins run
	// through the in-sync/delta paths and full rebuilds stay at zero,
	// which is the durability tentpole's acceptance signal.
	PostRestartInSyncRounds, PostRestartDeltaSyncs, PostRestartFullSyncs float64
}

// RunTimeline replays the full experiment timeline.
func RunTimeline(cfg TimelineConfig) (*TimelineResult, error) {
	ctx := context.Background()
	if cfg.Step <= 0 {
		cfg.Step = time.Minute
	}
	e, err := New(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	// The experiment is private to this run: flush and release every
	// peer's persistence (WAL fds, final fsync window) before returning.
	defer func() { _ = e.Close() }()
	rng := rand.New(rand.NewSource(cfg.Experiment.Seed + 99))
	res := &TimelineResult{
		Peers:                stats.NewTimeSeries("peers", cfg.Step),
		MaintenanceBandwidth: stats.NewTimeSeries("maintenance Bps", cfg.Step),
		QueryBandwidth:       stats.NewTimeSeries("query Bps", cfg.Step),
		QueryLatency:         stats.NewTimeSeries("query latency s", cfg.Step),
	}

	// Peers join uniformly during the join phase; data is replicated in its
	// final quarter.
	joinAt := make([]time.Duration, len(e.Peers))
	for i := range e.Peers {
		joinAt[i] = time.Duration(float64(cfg.JoinEnd) * 0.7 * rng.Float64())
	}
	replicateAt := cfg.JoinEnd * 3 / 4

	// Churn schedules for the final phase.
	schedules := make([]churn.Schedule, len(e.Peers))
	for i := range schedules {
		schedules[i] = cfg.Churn.Generate(cfg.QueryEnd, cfg.ChurnEnd, rng)
	}

	// Construction work is spread over the construction phase: each round
	// of the round-based construction driver is executed at evenly spaced
	// virtual times.
	constructTicks := int((cfg.ConstructEnd - cfg.JoinEnd) / cfg.Step)
	if constructTicks <= 0 {
		constructTicks = 1
	}
	maxRounds := cfg.Experiment.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 80
	}
	roundsPerTick := float64(maxRounds) / float64(constructTicks)
	roundsDone := 0
	roundBudget := 0.0
	constructionFinished := false
	replicated := false

	var lastMaintenance, lastQuery float64
	queriesPerTick := 0.0
	if cfg.QueryInterval > 0 {
		queriesPerTick = float64(cfg.Step) / float64(cfg.QueryInterval)
	}
	writesPerTick := 0.0
	if cfg.WriteInterval > 0 {
		writesPerTick = float64(cfg.Step) / float64(cfg.WriteInterval)
	}
	maintEvery := 0
	if cfg.MaintenanceInterval > 0 {
		maintEvery = int(cfg.MaintenanceInterval / cfg.Step)
		if maintEvery < 1 {
			maintEvery = 1
		}
	}

	var successBefore, attemptsBefore, successDuring, attemptsDuring float64
	var wSuccessBefore, wAttemptsBefore, wSuccessDuring, wAttemptsDuring float64
	var readbackOK, readbackN float64
	var liveWrites []replication.Item
	var restartedIdx []int
	restartsDone := false
	writeSeq := 0
	tick := 0

	for now := time.Duration(0); now < cfg.ChurnEnd; now += cfg.Step {
		// Figure 7: online peers. Before their join time peers are not part
		// of the network; during the churn phase their schedule decides.
		online := 0
		for i, p := range e.Peers {
			isOnline := now >= joinAt[i]
			if isOnline && now >= cfg.QueryEnd && cfg.Churn.Enabled() {
				isOnline = schedules[i].OnlineAt(now)
			}
			e.Sim.SetOnline(p.Addr(), isOnline)
			if isOnline {
				online++
			}
		}
		res.Peers.Add(now, float64(online))

		// Replication kicks in towards the end of the join phase.
		if !replicated && now >= replicateAt {
			if err := e.Replicate(ctx); err != nil {
				return nil, err
			}
			replicated = true
		}

		// Construction phase.
		if replicated && now < cfg.ConstructEnd && !constructionFinished {
			roundBudget += roundsPerTick
			for roundBudget >= 1 && !constructionFinished {
				roundBudget--
				if e.ConstructRound(ctx) == 0 {
					constructionFinished = true
				}
				roundsDone++
			}
		}
		if now >= cfg.ConstructEnd && res.Construction == nil {
			m, err := e.Measure(roundsDone)
			if err != nil {
				return nil, err
			}
			res.Construction = m
		}

		// Query phase (continues through the churn phase).
		if now >= cfg.ConstructEnd {
			nQueries := int(queriesPerTick * float64(online))
			for q := 0; q < nQueries; q++ {
				origin := e.randomOnlinePeer()
				if origin == nil {
					break
				}
				ownerIdx := rng.Intn(len(e.OriginalItems))
				it := e.OriginalItems[ownerIdx][rng.Intn(len(e.OriginalItems[ownerIdx]))]
				qres, err := origin.Query(ctx, it.Key)
				inChurn := now >= cfg.QueryEnd
				if inChurn {
					attemptsDuring++
				} else {
					attemptsBefore++
				}
				if err == nil && len(qres.Items) > 0 {
					if inChurn {
						successDuring++
					} else {
						successBefore++
					}
					// Model the response time: one round trip per hop plus
					// the local processing, with PlanetLab-style jitter.
					// Failed reference attempts under churn add timeouts.
					latency := float64(qres.Hops+1) * cfg.HopLatency.Seconds() * (0.5 + rng.ExpFloat64())
					if inChurn {
						latency += rng.Float64() * 2 * cfg.HopLatency.Seconds()
					}
					res.QueryLatency.Add(now, latency)
				}
			}
		}

		// Live write workload: routed Inserts (and occasional Deletes of
		// earlier live writes) from random online origins, continuing
		// through the churn phase.
		if now >= cfg.ConstructEnd && writesPerTick > 0 {
			inChurn := now >= cfg.QueryEnd
			nWrites := int(writesPerTick * float64(online))
			for w := 0; w < nWrites; w++ {
				origin := e.randomOnlinePeer()
				if origin == nil {
					break
				}
				var err error
				if writeSeq%4 == 3 && len(liveWrites) > 0 {
					idx := rng.Intn(len(liveWrites))
					it := liveWrites[idx]
					_, err = origin.Delete(ctx, it.Key, it.Value)
					liveWrites = append(liveWrites[:idx], liveWrites[idx+1:]...)
				} else {
					it := replication.Item{
						Key:   keyspace.MustFromFloat(cfg.Experiment.Distribution.Sample(rng), keyspace.DefaultDepth),
						Value: fmt.Sprintf("live-%d", writeSeq),
					}
					_, err = origin.Insert(ctx, it)
					if err == nil {
						liveWrites = append(liveWrites, it)
					}
				}
				writeSeq++
				if inChurn {
					wAttemptsDuring++
					if err == nil {
						wSuccessDuring++
					}
				} else {
					wAttemptsBefore++
					if err == nil {
						wSuccessBefore++
					}
				}
			}
			// Read-your-writes probe: sample earlier inserts and check a
			// query from a random origin reads them back.
			for s := 0; s < 3 && len(liveWrites) > 0; s++ {
				it := liveWrites[rng.Intn(len(liveWrites))]
				origin := e.randomOnlinePeer()
				if origin == nil {
					break
				}
				readbackN++
				if qres, err := origin.Query(ctx, it.Key); err == nil {
					for _, got := range qres.Items {
						if got.Value == it.Value {
							readbackOK++
							break
						}
					}
				}
			}
		}

		// Restart scenario: a slice of the online population crashes and
		// comes back, recovering durable state when the experiment is
		// persistent. The subsequent maintenance ticks show whether the
		// rejoin takes the cheap delta path or degrades to rebuilds.
		if cfg.RestartAt > 0 && !restartsDone && now >= cfg.RestartAt {
			restartsDone = true
			frac := cfg.RestartFraction
			if frac <= 0 {
				frac = 0.25
			}
			for i, p := range e.Peers {
				if now < joinAt[i] {
					continue
				}
				if ep := e.Sim.Lookup(p.Addr()); ep == nil || !ep.Online() {
					continue
				}
				if rng.Float64() >= frac {
					continue
				}
				if err := e.RestartPeer(i); err != nil {
					return nil, err
				}
				restartedIdx = append(restartedIdx, i)
			}
			res.RestartedPeers = len(restartedIdx)
		}

		// Background maintenance: anti-entropy plus routing probes on every
		// online peer at the configured virtual-time cadence, which is what
		// lets writes converge and churned peers catch up without a manual
		// re-Build.
		if maintEvery > 0 && now >= cfg.ConstructEnd && tick%maintEvery == 0 {
			for _, p := range e.onlinePeers() {
				p.MaintainTick(ctx, overlay.MaintenanceOptions{})
			}
		}
		tick++

		// Figure 8: bandwidth per second, split by purpose, from the peers'
		// byte counters (plus the counters retired with restarted peers, so
		// the cumulative series never jumps backwards).
		maintenance, query := e.Retired.MaintenanceBytes, e.Retired.QueryBytes
		for _, p := range e.Peers {
			maintenance += p.Metrics.MaintenanceBytes.Value()
			query += p.Metrics.QueryBytes.Value()
		}
		res.MaintenanceBandwidth.Add(now, (maintenance-lastMaintenance)/cfg.Step.Seconds())
		res.QueryBandwidth.Add(now, (query-lastQuery)/cfg.Step.Seconds())
		lastMaintenance, lastQuery = maintenance, query
	}

	if res.Construction == nil {
		m, err := e.Measure(roundsDone)
		if err != nil {
			return nil, err
		}
		res.Construction = m
	}
	if attemptsBefore > 0 {
		res.SuccessBeforeChurn = successBefore / attemptsBefore
	}
	if attemptsDuring > 0 {
		res.SuccessDuringChurn = successDuring / attemptsDuring
	}
	if wAttemptsBefore > 0 {
		res.WriteSuccessBeforeChurn = wSuccessBefore / wAttemptsBefore
	}
	if wAttemptsDuring > 0 {
		res.WriteSuccessDuringChurn = wSuccessDuring / wAttemptsDuring
	}
	if readbackN > 0 {
		res.ReadYourWrites = readbackOK / readbackN
	}
	res.InSyncRounds = e.Retired.SyncsInSync
	res.DeltaSyncs = e.Retired.SyncsDelta
	res.FullSyncs = e.Retired.SyncsFull
	res.TombstonesPruned = e.Retired.TombstonesPruned
	for _, p := range e.Peers {
		res.InSyncRounds += p.Metrics.SyncsInSync.Value()
		res.DeltaSyncs += p.Metrics.SyncsDelta.Value()
		res.FullSyncs += p.Metrics.SyncsFull.Value()
		res.TombstonesPruned += p.Metrics.TombstonesPruned.Value()
		res.TombstonesHeld += p.Store().TombstoneCount()
	}
	// Restarted peers' counters were zeroed at the restart, so what they
	// show now is exactly their post-restart sync behaviour.
	for _, i := range restartedIdx {
		res.PostRestartInSyncRounds += e.Peers[i].Metrics.SyncsInSync.Value()
		res.PostRestartDeltaSyncs += e.Peers[i].Metrics.SyncsDelta.Value()
		res.PostRestartFullSyncs += e.Peers[i].Metrics.SyncsFull.Value()
	}
	return res, nil
}

// randomOnlinePeer returns a random online peer or nil.
func (e *Experiment) randomOnlinePeer() *overlay.Peer {
	online := e.onlinePeers()
	if len(online) == 0 {
		return nil
	}
	return online[e.rng.Intn(len(online))]
}

// Summary renders the headline numbers of a timeline run.
func (r *TimelineResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "construction: %s\n", r.Construction)
	fmt.Fprintf(&b, "query success before churn: %.2f during churn: %.2f\n", r.SuccessBeforeChurn, r.SuccessDuringChurn)
	if r.WriteSuccessBeforeChurn > 0 || r.WriteSuccessDuringChurn > 0 {
		fmt.Fprintf(&b, "write success before churn: %.2f during churn: %.2f read-your-writes: %.2f\n",
			r.WriteSuccessBeforeChurn, r.WriteSuccessDuringChurn, r.ReadYourWrites)
	}
	if r.InSyncRounds+r.DeltaSyncs+r.FullSyncs > 0 {
		fmt.Fprintf(&b, "anti-entropy rounds: %.0f in-sync, %.0f delta, %.0f full; tombstones pruned: %.0f held: %d\n",
			r.InSyncRounds, r.DeltaSyncs, r.FullSyncs, r.TombstonesPruned, r.TombstonesHeld)
	}
	if r.RestartedPeers > 0 {
		fmt.Fprintf(&b, "restarted peers: %d (post-restart syncs: %.0f in-sync, %.0f delta, %.0f full)\n",
			r.RestartedPeers, r.PostRestartInSyncRounds, r.PostRestartDeltaSyncs, r.PostRestartFullSyncs)
	}
	lat := r.QueryLatency.Buckets()
	if len(lat) > 0 {
		var means []float64
		for _, bs := range lat {
			means = append(means, bs.Mean)
		}
		fmt.Fprintf(&b, "mean query latency: %.1fs\n", stats.Mean(means))
	}
	return b.String()
}
