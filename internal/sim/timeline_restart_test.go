package sim

import (
	"strings"
	"testing"
	"time"

	"pgrid/internal/churn"
)

// TestTimelineRestartScenario runs the timeline with persistence enabled
// and a mid-operation restart wave, and requires the restarted peers to
// rejoin through the in-sync/delta anti-entropy paths — no full rebuilds —
// because their baselines and content were recovered from disk.
func TestTimelineRestartScenario(t *testing.T) {
	cfg := TimelineConfig{
		Experiment:          smallConfig(11),
		JoinEnd:             20 * time.Minute,
		ConstructEnd:        60 * time.Minute,
		QueryEnd:            90 * time.Minute,
		ChurnEnd:            100 * time.Minute,
		QueryInterval:       2 * time.Minute,
		WriteInterval:       4 * time.Minute,
		MaintenanceInterval: 2 * time.Minute,
		Churn:               churn.Model{}, // isolate the restart effect from churn
		HopLatency:          2 * time.Second,
		Step:                time.Minute,
		RestartAt:           80 * time.Minute,
		RestartFraction:     0.3,
	}
	cfg.Experiment.DataDir = t.TempDir()
	res, err := RunTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestartedPeers == 0 {
		t.Fatal("restart scenario bounced no peers")
	}
	if res.PostRestartInSyncRounds+res.PostRestartDeltaSyncs == 0 {
		t.Error("restarted peers completed no in-sync/delta rounds after recovery")
	}
	if res.PostRestartFullSyncs > 0 {
		t.Errorf("restarted peers ran %.0f full syncs; durable baselines should have kept them on the delta path",
			res.PostRestartFullSyncs)
	}
	// Reads keep succeeding across the restart wave.
	if res.SuccessDuringChurn < 0.8 {
		t.Errorf("query success across the restart wave %v too low", res.SuccessDuringChurn)
	}
	if got := res.Summary(); !strings.Contains(got, "restarted peers") {
		t.Errorf("summary misses the restart metrics: %q", got)
	}
}

// TestTimelineRestartWithoutPersistence pins the contrast: the same restart
// wave without DataDir loses the peers' state, so at least some rejoins
// degrade to full-set transfers (walks count as delta-proportional; a
// full rebuild appears once tombstone GC has advanced) — and, more
// fundamentally, the restarted peers come back empty.
func TestTimelineRestartWithoutPersistence(t *testing.T) {
	cfg := TimelineConfig{
		Experiment:          smallConfig(12),
		JoinEnd:             20 * time.Minute,
		ConstructEnd:        60 * time.Minute,
		QueryEnd:            90 * time.Minute,
		ChurnEnd:            100 * time.Minute,
		QueryInterval:       2 * time.Minute,
		MaintenanceInterval: 2 * time.Minute,
		Churn:               churn.Model{},
		HopLatency:          2 * time.Second,
		Step:                time.Minute,
		RestartAt:           80 * time.Minute,
		RestartFraction:     0.3,
	}
	res, err := RunTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestartedPeers == 0 {
		t.Fatal("restart scenario bounced no peers")
	}
	// Without durable state the rejoiners are first contacts: their path
	// and baselines are gone, so they cannot run exact deltas with their
	// old partitions from the start. The run must still complete and serve
	// queries (replicas rebuild them), just less efficiently.
	if res.SuccessDuringChurn == 0 {
		t.Error("overlay did not survive the restart wave at all")
	}
}
