// Package sim composes the substrates (workload, network, unstructured
// overlay, P-Grid peers, churn) into complete experiments: the
// construction-quality experiments of Figure 6, the PlanetLab-style
// timeline of Figures 7–9, and the in-text system metrics of Section 5.2.
// It stands in for both the Mathematica simulations (Section 4.4) and the
// PlanetLab deployment (Section 5) of the paper; see docs/ARCHITECTURE.md
// for the substitution rationale.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
	"pgrid/internal/stats"
	"pgrid/internal/trie"
	"pgrid/internal/unstructured"
	"pgrid/internal/workload"
)

// Config parameterises one construction experiment.
type Config struct {
	// Peers is the number of peers (paper: 256, 512, 1024; PlanetLab ≈300).
	Peers int
	// KeysPerPeer is the number of data items initially assigned to each
	// peer (paper: 10).
	KeysPerPeer int
	// Distribution is the key workload (U, P0.5, P1.0, P1.5, N, A).
	Distribution workload.Distribution
	// Overlay is the per-peer configuration (d_max, n_min, sampling,
	// corrected vs. heuristic probabilities, ...).
	Overlay overlay.Config
	// MaxRounds bounds the number of construction rounds.
	MaxRounds int
	// Queries is the number of exact-match queries evaluated after
	// construction.
	Queries int
	// BatchQueries evaluates the query phase as pipelined batches through
	// Peer.QueryBatch (keys sharing a route share messages) instead of as
	// independent lookups.
	BatchQueries bool
	// BatchSize is the number of keys per batch when BatchQueries is set
	// (0 means 16).
	BatchSize int
	// OfflineFraction takes that fraction of peers offline before the query
	// phase to measure resilience (0 = no churn).
	OfflineFraction float64
	// Degree is the degree of the unstructured bootstrap overlay.
	Degree int
	// DataDir, when set, makes every peer's replica state durable under
	// DataDir/peer-NNNNN (WAL + snapshots), enabling RestartPeer to
	// simulate process crashes that recover their state — the timeline's
	// restart scenario. Empty keeps all stores in memory.
	DataDir string
	// Seed makes the experiment reproducible.
	Seed int64
}

// DefaultConfig returns the parameters of the paper's main simulation
// experiments: n_min = 5, d_max = 10*n_min, 10 keys per peer.
func DefaultConfig() Config {
	return Config{
		Peers:        256,
		KeysPerPeer:  10,
		Distribution: workload.Uniform{},
		Overlay: overlay.Config{
			MaxKeys:     50,
			MinReplicas: 5,
			Samples:     0,
			MaxRefs:     3,
		},
		MaxRounds: 80,
		Queries:   200,
		Degree:    6,
		Seed:      1,
	}
}

// Result aggregates the measurements of one construction experiment.
type Result struct {
	// Deviation is the load-balancing deviation from the optimal
	// partitioning of Algorithm 1 (the metric of Section 4.4 and Figure 6).
	Deviation float64
	// Replication summarises the replica counts across reference
	// partitions.
	Replication trie.ReplicationStats
	// InteractionsPerPeer is the number of construction interactions
	// initiated per peer (Figure 6(e)).
	InteractionsPerPeer float64
	// KeysMovedPerPeer is the number of data items moved per peer during
	// construction (Figure 6(f)).
	KeysMovedPerPeer float64
	// Rounds is the number of construction rounds executed.
	Rounds int
	// ConvergedFraction is the fraction of peers that detected convergence.
	ConvergedFraction float64
	// MeanPathLength is the average peer path length (the paper reports
	// just below 6 on PlanetLab).
	MeanPathLength float64
	// MaxPathLength is the deepest peer path.
	MaxPathLength int
	// QuerySuccessRate is the fraction of successful queries (paper:
	// 95–100% even under churn).
	QuerySuccessRate float64
	// MeanQueryHops is the average number of routing hops per successful
	// query (paper: ≈ half the mean path length).
	MeanQueryHops float64
	// MeanReplicasPerPartition is the average number of peers per distinct
	// path (paper: ≈ n_min).
	MeanReplicasPerPartition float64
	// DistinctPaths is the number of distinct partitions formed.
	DistinctPaths int
}

// String renders the result as a compact report.
func (r *Result) String() string {
	return fmt.Sprintf("deviation=%.3f interactions/peer=%.2f keys-moved/peer=%.1f path-len=%.2f hops=%.2f success=%.2f replicas/partition=%.2f partitions=%d",
		r.Deviation, r.InteractionsPerPeer, r.KeysMovedPerPeer, r.MeanPathLength, r.MeanQueryHops, r.QuerySuccessRate, r.MeanReplicasPerPartition, r.DistinctPaths)
}

// Experiment is a fully constructed in-memory deployment, exposed so that
// the timeline runner, examples and benchmarks can drive additional
// workload against it after construction.
type Experiment struct {
	Config Config
	Sim    *network.Sim
	Graph  *unstructured.Graph
	Peers  []*overlay.Peer
	// OriginalItems is the multiset of items initially assigned to peers
	// (before replication), one slice per peer.
	OriginalItems [][]replication.Item
	// Retired accumulates the metric counters of peers replaced by
	// RestartPeer (whose fresh counters restart at zero), so aggregate
	// series stay monotonic across restarts.
	Retired RetiredMetrics
	rng     *rand.Rand
}

// RetiredMetrics sums the counters of peers that were replaced by
// RestartPeer.
type RetiredMetrics struct {
	MaintenanceBytes, QueryBytes                         float64
	SyncsInSync, SyncsDelta, SyncsFull, TombstonesPruned float64
}

// New creates the deployment: simulated network, peers with their initial
// data, and the unstructured bootstrap overlay.
func New(cfg Config) (*Experiment, error) {
	if cfg.Peers < 2 {
		return nil, errors.New("sim: need at least two peers")
	}
	if cfg.KeysPerPeer <= 0 {
		return nil, errors.New("sim: KeysPerPeer must be positive")
	}
	if cfg.Distribution == nil {
		return nil, errors.New("sim: missing key distribution")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	simNet := network.NewSim(network.SimConfig{Seed: cfg.Seed})
	e := &Experiment{Config: cfg, Sim: simNet, rng: rng}

	addrs := make([]network.Addr, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		addr := network.Addr(fmt.Sprintf("peer-%05d", i))
		addrs[i] = addr
		peer, err := overlay.NewPersistent(e.peerConfig(i), simNet.Endpoint(addr))
		if err != nil {
			_ = e.Close() // release the WALs of the peers already opened
			return nil, fmt.Errorf("sim: open peer %d: %w", i, err)
		}
		items := make([]replication.Item, cfg.KeysPerPeer)
		for k := range items {
			items[k] = replication.Item{
				Key:   keyspace.MustFromFloat(cfg.Distribution.Sample(rng), keyspace.DefaultDepth),
				Value: fmt.Sprintf("item-%d-%d", i, k),
			}
		}
		peer.AddItems(items)
		e.Peers = append(e.Peers, peer)
		e.OriginalItems = append(e.OriginalItems, items)
	}
	degree := cfg.Degree
	if degree <= 0 {
		degree = unstructured.DefaultDegree
	}
	e.Graph = unstructured.NewGraph(addrs, degree, cfg.Seed+1)
	return e, nil
}

// peerConfig returns peer i's overlay configuration, including its
// persistence directory when Config.DataDir is set.
func (e *Experiment) peerConfig(i int) overlay.Config {
	pcfg := e.Config.Overlay
	pcfg.Seed = e.Config.Seed + int64(i)*104729
	if e.Config.DataDir != "" {
		pcfg.DataDir = filepath.Join(e.Config.DataDir, fmt.Sprintf("peer-%05d", i))
	}
	return pcfg
}

// RestartPeer simulates a process crash and restart of peer i: the running
// peer's persistence is flushed and closed, its metric counters are folded
// into Retired, and a fresh peer is bound to the same simulated endpoint.
// With Config.DataDir the new peer recovers its items, tombstones,
// partition path and anti-entropy baselines from disk; without it the peer
// rejoins empty.
func (e *Experiment) RestartPeer(i int) error {
	old := e.Peers[i]
	// Fail in-flight calls like churn while the store closes and reopens;
	// a call acknowledged into a closing store would be durably lost yet
	// advance the sender's sync baseline past it.
	e.Sim.SetOnline(old.Addr(), false)
	if err := old.Close(); err != nil {
		return fmt.Errorf("sim: close peer %d: %w", i, err)
	}
	e.Retired.MaintenanceBytes += old.Metrics.MaintenanceBytes.Value()
	e.Retired.QueryBytes += old.Metrics.QueryBytes.Value()
	e.Retired.SyncsInSync += old.Metrics.SyncsInSync.Value()
	e.Retired.SyncsDelta += old.Metrics.SyncsDelta.Value()
	e.Retired.SyncsFull += old.Metrics.SyncsFull.Value()
	e.Retired.TombstonesPruned += old.Metrics.TombstonesPruned.Value()
	peer, err := overlay.NewPersistent(e.peerConfig(i), e.Sim.Endpoint(old.Addr()))
	if err != nil {
		return fmt.Errorf("sim: reopen peer %d: %w", i, err)
	}
	e.Peers[i] = peer
	e.Sim.SetOnline(old.Addr(), true)
	return nil
}

// Close flushes and closes every peer's persistence (a no-op for in-memory
// experiments).
func (e *Experiment) Close() error {
	var first error
	for _, p := range e.Peers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Replicate runs the pre-construction replication phase: every peer pushes
// its original items to MinReplicas peers selected by random walks on the
// unstructured overlay. Peers that are offline (have not joined yet, or
// churned out) are skipped; unreachable targets are tolerated, as in a real
// deployment.
func (e *Experiment) Replicate(ctx context.Context) error {
	nmin := e.Peers[0].Config().MinReplicas
	for i, p := range e.Peers {
		if ep := e.Sim.Lookup(p.Addr()); ep != nil && !ep.Online() {
			continue
		}
		targets := make([]network.Addr, 0, nmin)
		for attempts := 0; len(targets) < nmin && attempts < 10*nmin; attempts++ {
			cand, err := e.Graph.RandomWalk(p.Addr(), 0, nil)
			if err != nil {
				return err
			}
			if cand != p.Addr() {
				targets = append(targets, cand)
			}
		}
		// Best effort: unreachable targets simply receive no copy.
		_ = p.ReplicateItems(ctx, e.OriginalItems[i], targets)
	}
	return nil
}

// ConstructRound lets every not-yet-converged peer initiate one interaction
// with a partner selected by a random walk. It returns the number of peers
// that initiated an interaction.
func (e *Experiment) ConstructRound(ctx context.Context) int {
	active := 0
	order := e.rng.Perm(len(e.Peers))
	for _, idx := range order {
		p := e.Peers[idx]
		if p.Done() {
			continue
		}
		partner, err := e.Graph.RandomWalk(p.Addr(), 0, nil)
		if err != nil || partner == p.Addr() {
			continue
		}
		active++
		_, _ = p.Interact(ctx, partner)
	}
	return active
}

// Construct runs construction rounds until every peer converged or the
// round budget is exhausted. It returns the number of rounds used.
func (e *Experiment) Construct(ctx context.Context) int {
	maxRounds := e.Config.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 80
	}
	for round := 0; round < maxRounds; round++ {
		if e.ConstructRound(ctx) == 0 {
			return round
		}
	}
	return maxRounds
}

// ReferenceTree builds the optimal partition trie of Algorithm 1 over the
// global key multiset.
func (e *Experiment) ReferenceTree() (*trie.Tree, error) {
	var keys keyspace.Keys
	for _, items := range e.OriginalItems {
		for _, it := range items {
			keys = append(keys, it.Key)
		}
	}
	params := trie.Params{
		MaxKeys:     e.Peers[0].Config().MaxKeys,
		MinReplicas: e.Peers[0].Config().MinReplicas,
		MaxDepth:    e.Peers[0].Config().MaxDepth,
	}
	return trie.Build(keys, float64(len(e.Peers)), params)
}

// Assignment returns the decentralized outcome: how many peers ended on
// each path.
func (e *Experiment) Assignment() trie.Assignment {
	paths := make([]keyspace.Path, len(e.Peers))
	for i, p := range e.Peers {
		paths[i] = p.Path()
	}
	return trie.AssignmentFromPaths(paths)
}

// RunQueries evaluates exact-match queries for randomly chosen existing
// items from randomly chosen online peers. It returns the success rate and
// the mean hop count of successful queries.
func (e *Experiment) RunQueries(ctx context.Context, n int) (successRate, meanHops float64) {
	if n <= 0 {
		return 0, 0
	}
	online := e.onlinePeers()
	if len(online) == 0 {
		return 0, 0
	}
	var success, hops float64
	attempts := 0
	for i := 0; i < n; i++ {
		ownerIdx := e.rng.Intn(len(e.OriginalItems))
		items := e.OriginalItems[ownerIdx]
		it := items[e.rng.Intn(len(items))]
		origin := online[e.rng.Intn(len(online))]
		attempts++
		res, err := origin.Query(ctx, it.Key)
		if err != nil {
			continue
		}
		found := false
		for _, got := range res.Items {
			if got.Value == it.Value {
				found = true
				break
			}
		}
		if found {
			success++
			hops += float64(res.Hops)
		}
	}
	if attempts == 0 {
		return 0, 0
	}
	if success > 0 {
		meanHops = hops / success
	}
	return success / float64(attempts), meanHops
}

// RunBatchQueries evaluates n exact-match queries for randomly chosen
// existing items as pipelined batches of the given size, each batch starting
// at a randomly chosen online peer. It returns the per-key success rate and
// the mean hop count of successful keys, matching RunQueries so the two
// query engines can be compared on the same metrics.
func (e *Experiment) RunBatchQueries(ctx context.Context, n, batchSize int) (successRate, meanHops float64) {
	if n <= 0 {
		return 0, 0
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	online := e.onlinePeers()
	if len(online) == 0 {
		return 0, 0
	}
	var success, hops float64
	attempts := 0
	for n > 0 {
		size := batchSize
		if size > n {
			size = n
		}
		n -= size
		keys := make([]keyspace.Key, size)
		values := make([]string, size)
		for i := 0; i < size; i++ {
			items := e.OriginalItems[e.rng.Intn(len(e.OriginalItems))]
			it := items[e.rng.Intn(len(items))]
			keys[i] = it.Key
			values[i] = it.Value
		}
		origin := online[e.rng.Intn(len(online))]
		results := origin.QueryBatch(ctx, keys)
		for i, res := range results {
			attempts++
			if res.Err != nil {
				continue
			}
			for _, got := range res.Items {
				if got.Value == values[i] {
					success++
					hops += float64(res.Hops)
					break
				}
			}
		}
	}
	if attempts == 0 {
		return 0, 0
	}
	if success > 0 {
		meanHops = hops / success
	}
	return success / float64(attempts), meanHops
}

// onlinePeers returns the peers whose endpoints are currently online.
func (e *Experiment) onlinePeers() []*overlay.Peer {
	var out []*overlay.Peer
	for _, p := range e.Peers {
		if ep := e.Sim.Lookup(p.Addr()); ep != nil && ep.Online() {
			out = append(out, p)
		}
	}
	return out
}

// TakeOffline switches the given fraction of peers offline (uniformly at
// random) and returns their indices.
func (e *Experiment) TakeOffline(fraction float64) []int {
	n := int(fraction * float64(len(e.Peers)))
	perm := e.rng.Perm(len(e.Peers))
	var offline []int
	for i := 0; i < n && i < len(perm); i++ {
		idx := perm[i]
		e.Sim.SetOnline(e.Peers[idx].Addr(), false)
		offline = append(offline, idx)
	}
	return offline
}

// Measure collects the construction-quality metrics of the experiment.
func (e *Experiment) Measure(rounds int) (*Result, error) {
	ref, err := e.ReferenceTree()
	if err != nil {
		return nil, err
	}
	assignment := e.Assignment()
	res := &Result{
		Deviation:   trie.Deviation(ref, assignment),
		Replication: trie.Replication(ref, assignment),
		Rounds:      rounds,
	}
	var interactions, keysMoved, pathLen, converged float64
	maxPath := 0
	for _, p := range e.Peers {
		interactions += p.Metrics.Interactions.Value()
		keysMoved += p.Metrics.KeysMoved.Value()
		d := p.Path().Depth()
		pathLen += float64(d)
		if d > maxPath {
			maxPath = d
		}
		if p.Done() {
			converged++
		}
	}
	n := float64(len(e.Peers))
	res.InteractionsPerPeer = interactions / n
	res.KeysMovedPerPeer = keysMoved / n
	res.MeanPathLength = pathLen / n
	res.MaxPathLength = maxPath
	res.ConvergedFraction = converged / n
	counts := map[keyspace.Path]int{}
	for _, p := range e.Peers {
		counts[p.Path()]++
	}
	res.DistinctPaths = len(counts)
	var replicaCounts []float64
	for _, c := range counts {
		replicaCounts = append(replicaCounts, float64(c))
	}
	res.MeanReplicasPerPartition = stats.Mean(replicaCounts)
	return res, nil
}

// Run executes the complete experiment: replication, construction, optional
// churn, queries, and measurement.
func Run(cfg Config) (*Result, error) {
	ctx := context.Background()
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Replicate(ctx); err != nil {
		return nil, err
	}
	rounds := e.Construct(ctx)
	res, err := e.Measure(rounds)
	if err != nil {
		return nil, err
	}
	if cfg.OfflineFraction > 0 {
		e.TakeOffline(cfg.OfflineFraction)
	}
	if cfg.BatchQueries {
		res.QuerySuccessRate, res.MeanQueryHops = e.RunBatchQueries(ctx, cfg.Queries, cfg.BatchSize)
	} else {
		res.QuerySuccessRate, res.MeanQueryHops = e.RunQueries(ctx, cfg.Queries)
	}
	return res, nil
}
