package churn

import (
	"math/rand"
	"testing"
	"time"
)

func TestPaperModelEnabled(t *testing.T) {
	if !PaperModel().Enabled() {
		t.Error("paper model should be enabled")
	}
	if None().Enabled() {
		t.Error("None should be disabled")
	}
}

func TestGenerateDisabled(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := None().Generate(10*time.Minute, 60*time.Minute, r)
	if len(s.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(s.Sessions))
	}
	if !s.OnlineAt(30 * time.Minute) {
		t.Error("peer should always be online without churn")
	}
	if s.OnlineFraction(10*time.Minute, 60*time.Minute, time.Minute) != 1 {
		t.Error("online fraction should be 1")
	}
}

func TestGenerateSessionsWithinHorizon(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := PaperModel()
	for trial := 0; trial < 50; trial++ {
		s := m.Generate(0, 90*time.Minute, r)
		if len(s.Sessions) == 0 {
			t.Fatal("no sessions generated")
		}
		prevEnd := time.Duration(-1)
		for _, sess := range s.Sessions {
			if sess.Start < 0 || sess.End > 90*time.Minute || sess.End <= sess.Start {
				t.Fatalf("invalid session %+v", sess)
			}
			if sess.Start <= prevEnd {
				t.Fatalf("sessions overlap or are unordered: %+v", s.Sessions)
			}
			prevEnd = sess.End
		}
	}
}

func TestGenerateOnlineFractionInPaperRange(t *testing.T) {
	// Online 5-10 min, offline 1-5 min: expected availability
	// E[on]/(E[on]+E[off]) = 7.5/(7.5+3) ≈ 0.71. Averaged over many peers
	// the measured fraction should be in a broad band around that.
	r := rand.New(rand.NewSource(3))
	m := PaperModel()
	sum := 0.0
	const peers = 200
	for i := 0; i < peers; i++ {
		s := m.Generate(0, 100*time.Minute, r)
		sum += s.OnlineFraction(0, 100*time.Minute, time.Minute)
	}
	avg := sum / peers
	if avg < 0.6 || avg > 0.85 {
		t.Errorf("average online fraction %v outside expected band", avg)
	}
}

func TestOnlineAtBoundaries(t *testing.T) {
	s := Schedule{Sessions: []Session{{Start: 10 * time.Minute, End: 20 * time.Minute}}}
	if s.OnlineAt(9 * time.Minute) {
		t.Error("before session should be offline")
	}
	if !s.OnlineAt(10 * time.Minute) {
		t.Error("session start should be online (inclusive)")
	}
	if s.OnlineAt(20 * time.Minute) {
		t.Error("session end should be offline (exclusive)")
	}
}

func TestOnlineFractionDegenerate(t *testing.T) {
	s := Schedule{Sessions: []Session{{Start: 0, End: time.Minute}}}
	if s.OnlineFraction(0, 0, time.Minute) != 0 {
		t.Error("empty interval fraction should be 0")
	}
	// Zero step defaults to a minute rather than looping forever.
	if got := s.OnlineFraction(0, 2*time.Minute, 0); got != 0.5 {
		t.Errorf("fraction with default step = %v", got)
	}
}

func TestGenerateFromAfterHorizon(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := PaperModel().Generate(10*time.Minute, 5*time.Minute, r)
	if len(s.Sessions) != 1 {
		t.Error("degenerate interval should produce the single covering session")
	}
}

func TestSampleBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		d := sample(2*time.Minute, 4*time.Minute, r)
		if d < 2*time.Minute || d > 4*time.Minute {
			t.Fatalf("sample %v out of bounds", d)
		}
	}
	if sample(3*time.Minute, 3*time.Minute, r) != 3*time.Minute {
		t.Error("degenerate sample should return lo")
	}
}
