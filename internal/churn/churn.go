// Package churn models peer availability during the final phase of the
// PlanetLab experiment (Section 5.1): each peer independently goes offline
// for 1–5 minutes every 5–10 minutes, creating the sustained churn against
// which search resilience is evaluated (Figure 7 and Figure 9).
package churn

import (
	"math/rand"
	"time"
)

// Model describes a peer's on/off behaviour.
type Model struct {
	// MinOnline and MaxOnline bound the duration of an online session.
	MinOnline, MaxOnline time.Duration
	// MinOffline and MaxOffline bound the duration of an offline period.
	MinOffline, MaxOffline time.Duration
}

// PaperModel returns the churn parameters of Section 5.1: offline 1–5
// minutes every 5–10 minutes.
func PaperModel() Model {
	return Model{
		MinOnline:  5 * time.Minute,
		MaxOnline:  10 * time.Minute,
		MinOffline: 1 * time.Minute,
		MaxOffline: 5 * time.Minute,
	}
}

// None returns a model without churn (peers stay online forever).
func None() Model { return Model{} }

// Enabled reports whether the model actually produces churn.
func (m Model) Enabled() bool { return m.MaxOffline > 0 && m.MaxOnline > 0 }

// sample draws a duration uniformly from [lo, hi].
func sample(lo, hi time.Duration, r *rand.Rand) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)))
}

// Session is one online/offline cycle of a peer.
type Session struct {
	// Start is the offset at which the peer goes online.
	Start time.Duration
	// End is the offset at which the peer goes offline again.
	End time.Duration
}

// Contains reports whether the peer is online at offset t.
func (s Session) Contains(t time.Duration) bool { return t >= s.Start && t < s.End }

// Schedule is a peer's precomputed availability over an experiment.
type Schedule struct {
	Sessions []Session
	// Horizon is the experiment duration the schedule covers.
	Horizon time.Duration
}

// Generate produces a peer's availability schedule over the interval
// [from, horizon): the peer is online from the beginning of the churn phase
// and alternates online/offline periods drawn from the model. A disabled
// model yields a single session covering the whole interval.
func (m Model) Generate(from, horizon time.Duration, r *rand.Rand) Schedule {
	if !m.Enabled() || from >= horizon {
		return Schedule{Sessions: []Session{{Start: from, End: horizon}}, Horizon: horizon}
	}
	var sessions []Session
	t := from
	for t < horizon {
		on := sample(m.MinOnline, m.MaxOnline, r)
		end := t + on
		if end > horizon {
			end = horizon
		}
		sessions = append(sessions, Session{Start: t, End: end})
		off := sample(m.MinOffline, m.MaxOffline, r)
		t = end + off
	}
	return Schedule{Sessions: sessions, Horizon: horizon}
}

// OnlineAt reports whether the peer is online at offset t (peers are online
// before the first session starts only if t precedes the schedule's first
// session start and the schedule starts at that time).
func (s Schedule) OnlineAt(t time.Duration) bool {
	for _, sess := range s.Sessions {
		if sess.Contains(t) {
			return true
		}
	}
	return false
}

// OnlineFraction returns the fraction of the interval [from, to) during
// which the peer is online, sampled at the given resolution.
func (s Schedule) OnlineFraction(from, to, step time.Duration) float64 {
	if step <= 0 {
		step = time.Minute
	}
	total, online := 0, 0
	for t := from; t < to; t += step {
		total++
		if s.OnlineAt(t) {
			online++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(online) / float64(total)
}
