package harness

import (
	"os"
	"sort"
	"testing"
	"time"
)

// TestChurnCrash50Proc is the flagship process-level suite: 52 real
// pgridnode processes (50+ per the roadmap target, plus headroom for the
// spared gateway entry peers) bootstrapped over the pooled TCP transport,
// loaded with keys spread across partitions, then put through rolling
// SIGKILL waves that crash a third of the fleet per wave and rejoin each
// victim with its original address and data dir. After the churn the
// overlay must reconverge on every surviving key and every pre-churn
// delete must stay dead — on both storage engines.
//
// The suite spawns >100 process starts and runs for minutes, so it is
// opt-in: set PGRID_PROC=1 (the nightly churn job does).
func TestChurnCrash50Proc(t *testing.T) {
	if os.Getenv("PGRID_PROC") == "" {
		t.Skip("set PGRID_PROC=1 to run the 50-process churn suite")
	}
	for _, engine := range []string{"mem", "disk"} {
		t.Run(engine, func(t *testing.T) {
			runChurnCrash(t, engine)
		})
	}
}

func runChurnCrash(t *testing.T, engine string) {
	c, err := New(Options{
		Nodes:     52,
		Engine:    engine,
		Durable:   true,
		HTTPNodes: 1,
		Seed:      31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v\n%s", err, c.LogTails(20))
	}
	// Entry peers 0-2 are spared from churn so reads keep flowing
	// mid-wave; everything behind them is fair game.
	spare := []int{0, 1, 2}
	if err := c.StartGate(spare...); err != nil {
		t.Fatalf("gate: %v\n%s", err, c.LogTails(20))
	}

	keys, err := c.LoadKeys("churn", 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(keys, 120*time.Second); err != nil {
		t.Fatalf("pre-churn convergence: %v\n%s", err, c.LogTails(20))
	}

	// Delete a slice of the keys before the churn; their tombstones must
	// survive every crash/rejoin wave.
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	deleted := make(map[string]string, 6)
	for i := 0; i < len(sorted); i += 10 {
		k := sorted[i]
		if err := c.Gate.Delete(k, keys[k]); err != nil {
			t.Fatalf("delete %s: %v", k, err)
		}
		deleted[k] = keys[k]
		delete(keys, k)
	}
	if err := c.WaitAbsent(deleted, 60*time.Second); err != nil {
		t.Fatalf("pre-churn deletes: %v\n%s", err, c.LogTails(20))
	}

	rep, err := c.Churn(ChurnOptions{
		Rounds:   3,
		Fraction: 1.0 / 3,
		DownFor:  1 * time.Second,
		Spare:    spare,
	})
	if err != nil {
		t.Fatalf("churn (%d killed, %d restarted so far): %v\n%s", rep.Killed, rep.Restarts, err, c.LogTails(20))
	}
	t.Logf("churn: %d waves, %d SIGKILLs, %d rejoins across %d nodes", rep.Waves, rep.Killed, rep.Restarts, len(c.Nodes))
	if rep.Killed < 16*3 {
		t.Errorf("churn killed only %d processes, want a third of the fleet per wave", rep.Killed)
	}
	if got := c.Running(); got != len(c.Nodes) {
		t.Fatalf("%d/%d nodes running after churn", got, len(c.Nodes))
	}

	if err := c.WaitConverged(keys, 240*time.Second); err != nil {
		t.Fatalf("post-churn convergence: %v\n%s", err, c.LogTails(30))
	}
	if err := c.WaitAbsent(deleted, 120*time.Second); err != nil {
		t.Errorf("post-churn resurrection: %v\n%s", err, c.LogTails(30))
	}

	// The fleet-wide metrics view stays scrapeable after the churn.
	nm, err := c.Nodes[0].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if nm.StoreClock < 1 {
		t.Errorf("node 0 store clock %v after churn workload", nm.StoreClock)
	}
}
