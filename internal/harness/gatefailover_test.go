package harness

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestGateFailoverRealProcessDeath pins the gateway's behaviour when its
// RemoteBackend loses every entry peer to real process death: requests
// answer 503 with a Retry-After hint while the peers are down, and the
// gateway recovers on its own — same process, no restart — once the
// peers come back.
func TestGateFailoverRealProcessDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	c, err := New(Options{
		Nodes:     5,
		Durable:   true,
		HTTPNodes: 1,
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v\n%s", err, c.LogTails(20))
	}
	// Entry peers are nodes 1 and 2 only, so killing exactly those two
	// severs the gateway from the overlay while nodes 0, 3, 4 keep it
	// alive and holding data.
	if err := c.StartGate(1, 2); err != nil {
		t.Fatalf("gate: %v\n%s", err, c.LogTails(20))
	}

	keys, err := c.LoadKeys("failover", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(keys, 60*time.Second); err != nil {
		t.Fatalf("%v\n%s", err, c.LogTails(20))
	}

	for _, idx := range []int{1, 2} {
		if err := c.Nodes[idx].Kill(); err != nil {
			t.Fatalf("kill node %d: %v", idx, err)
		}
	}

	// Fresh keys per probe so no cache layer can answer for the dead
	// overlay. The gateway must shed with 503 + Retry-After, not hang or
	// crash.
	saw503 := false
	for i := 0; i < 20 && !saw503; i++ {
		res, err := c.Gate.Search(fmt.Sprintf("zz-down-probe-%02d", i))
		if err != nil {
			t.Fatalf("gate transport error while peers down: %v", err)
		}
		switch res.Status {
		case http.StatusServiceUnavailable:
			saw503 = true
			if res.RetryAfter == "" {
				t.Error("503 during entry-peer outage carries no Retry-After header")
			}
		case http.StatusGatewayTimeout:
			// A probe that raced an in-flight connection can time out
			// instead; keep sampling.
		default:
			t.Fatalf("search with all entry peers dead: status %d, want 503", res.Status)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !saw503 {
		t.Fatal("gateway never answered 503 while all entry peers were dead")
	}
	gm, err := c.Gate.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if gm.Search503 < 1 {
		t.Errorf("gate 503 counter %v, want >= 1", gm.Search503)
	}

	// Bring the entry peers back; the same gateway process must recover
	// by itself.
	for _, idx := range []int{1, 2} {
		if err := c.Nodes[idx].Restart(); err != nil {
			t.Fatalf("restart node %d: %v", idx, err)
		}
		if err := c.Nodes[idx].WaitListening(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitConverged(keys, 60*time.Second); err != nil {
		t.Fatalf("gateway did not recover after entry peers returned: %v\n%s", err, c.LogTails(20))
	}
	if got := c.Gate.starts; got != 1 {
		t.Errorf("gateway was started %d times, recovery must not involve a gate restart", got)
	}
}
