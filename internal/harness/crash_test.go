package harness

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestCrashRecoveryDeltaSync is the process-level crash regression: a
// disk-engine node is SIGKILLed while checkpoint and WAL writes are in
// flight, falls behind while the rest of the fleet keeps mutating, and on
// restart must rejoin through the exact-delta sync path — pinned via the
// pgrid_peer_syncs_total counters (delta observed, never a full rebuild)
// — without resurrecting a key that was deleted while it was down.
func TestCrashRecoveryDeltaSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	c, err := New(Options{
		Nodes:     4,
		Engine:    "disk",
		HTTPNodes: 4,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v\n%s", err, c.LogTails(20))
	}
	// The gateway's entry rotation skips a dead entry peer within the
	// request, so the crash victim may stay in the entry set.
	if err := c.StartGate(); err != nil {
		t.Fatalf("gate: %v\n%s", err, c.LogTails(20))
	}

	keys, err := c.LoadKeys("crash", 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(keys, 60*time.Second); err != nil {
		t.Fatalf("%v\n%s", err, c.LogTails(20))
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	// The victim must be a node that actually holds data, or it can
	// legitimately rejoin with nothing to sync: pick the non-bootstrap
	// node with the most stored items.
	victim := c.Nodes[1]
	best := -1.0
	for _, n := range c.Nodes[1:] {
		nm, err := n.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if nm.StoreItems > best {
			best, victim = nm.StoreItems, n
		}
	}
	if best < 1 {
		t.Fatalf("no non-bootstrap node holds items (best %v); cannot stage a catch-up", best)
	}
	t.Logf("victim: %s holding %v items", victim.proc.name, best)

	// SIGKILL the victim while a writer is actively mutating through the
	// gateway: with -maintain 250ms the victim is mid-checkpoint /
	// mid-WAL-append with high probability, which is exactly the torn
	// state the disk engine must recover from.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("%c%c-burst-%04d", 'a'+i%26, 'a'+(i/26)%26, i)
			_ = c.Gate.Put(key, "doc-burst")
			time.Sleep(10 * time.Millisecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	if err := victim.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	close(stop)
	wg.Wait()

	// While the victim is down: new keys it has never seen (it must catch
	// up via delta on rejoin) and a delete of a key it still holds live
	// (the tombstone must win on rejoin — resurrection would mean the
	// victim pushed its stale live copy back into the overlay). The late
	// keys are siblings of the originals — same leading characters, so
	// the same partition at encoding depth — which guarantees every
	// data-holding partition, the victim's included, receives writes it
	// missed.
	lateKeys := make(map[string]string, len(sorted))
	for _, k := range sorted {
		sib, val := k+"x", "doc-late-"+k
		if err := c.Gate.Put(sib, val); err != nil {
			t.Fatalf("late put %s: %v", sib, err)
		}
		lateKeys[sib] = val
	}
	deleted, deletedVal := sorted[2], keys[sorted[2]]
	if err := c.Gate.Delete(deleted, deletedVal); err != nil {
		t.Fatal(err)
	}
	delete(keys, deleted)
	for k, v := range lateKeys {
		keys[k] = v
	}
	if err := c.WaitConverged(keys, 60*time.Second); err != nil {
		t.Fatalf("pre-restart convergence: %v\n%s", err, c.LogTails(20))
	}

	// Snapshot the surviving peers' sync classification before the victim
	// returns. Counters count initiator-side syncs only, and any live peer
	// may be the one whose maintenance round catches the victim up, so the
	// rejoin is pinned fleet-wide: the catch-up must appear as a rise in
	// the fleet's delta count with the full-rebuild count flat. The
	// victim's own counters restart at zero so they only ever add.
	fleetSyncs := func() (delta, full float64) {
		for _, n := range c.Nodes {
			if n == victim && !n.Running() {
				continue
			}
			nm, err := n.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			delta += nm.SyncsDelta
			full += nm.SyncsFull
		}
		return delta, full
	}
	beforeDelta, beforeFull := fleetSyncs()

	if err := c.RestartRecovered(victim); err != nil {
		t.Fatal(err)
	}
	if err := victim.WaitListening(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := victim.WaitHTTPReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !victim.LogContains("recovered durable state") {
		t.Errorf("victim did not recover durable state:\n%s", victim.logTail(20))
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		delta, full := fleetSyncs()
		if full > beforeFull {
			t.Fatalf("crash rejoin triggered a full rebuild (fleet full syncs %v -> %v), want exact-delta path", beforeFull, full)
		}
		if delta > beforeDelta {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no delta sync observed after rejoin (fleet delta %v -> %v, full %v -> %v)",
				beforeDelta, delta, beforeFull, full)
		}
		time.Sleep(250 * time.Millisecond)
	}

	// The overlay converges with the victim back in, and the key deleted
	// during the outage stays dead.
	if err := c.WaitConverged(keys, 60*time.Second); err != nil {
		t.Fatalf("post-restart convergence: %v\n%s", err, c.LogTails(20))
	}
	if err := c.WaitAbsent(map[string]string{deleted: deletedVal}, 60*time.Second); err != nil {
		t.Errorf("tombstone resurrection after crash rejoin: %v\n%s", err, victim.logTail(30))
	}
}
