package harness

import (
	"fmt"
	"net"
)

// allocatePorts reserves n distinct loopback TCP ports by binding
// ephemeral listeners and releasing them. A node must be restartable on
// the SAME address (its identity in every other peer's routing table), so
// the harness cannot lean on -listen 127.0.0.1:0 — it pins the allocated
// port for the process's whole lifecycle, restarts included. The window
// between release and the node's own bind is the standard ephemeral-port
// race; on loopback with the kernel cycling its ephemeral range it is
// negligible, and a collision surfaces immediately as a failed bind in
// the node's log.
func allocatePorts(n int) ([]int, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("harness: allocate port %d/%d: %w", i+1, n, err)
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}
