package harness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// binaries caches one `go build` of the deployable commands per test
// process: every cluster in a package's test run shares the same pgridnode
// and pgridgate binaries instead of paying the build per test.
var binaries struct {
	once sync.Once
	dir  string
	err  error
}

// BuildBinaries compiles cmd/pgridnode and cmd/pgridgate into a
// process-lifetime temp directory and returns their paths. The build runs
// once; later calls return the cached result.
func BuildBinaries() (node, gateBin string, err error) {
	binaries.once.Do(func() {
		root, err := repoRoot()
		if err != nil {
			binaries.err = err
			return
		}
		dir, err := os.MkdirTemp("", "pgrid-harness-bin-")
		if err != nil {
			binaries.err = err
			return
		}
		for _, pkg := range []string{"pgridnode", "pgridgate"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, pkg), "./cmd/"+pkg)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				binaries.err = fmt.Errorf("harness: build %s: %v\n%s", pkg, err, out)
				return
			}
		}
		binaries.dir = dir
	})
	if binaries.err != nil {
		return "", "", binaries.err
	}
	return filepath.Join(binaries.dir, "pgridnode"), filepath.Join(binaries.dir, "pgridgate"), nil
}

// repoRoot walks up from the working directory to the go.mod, so tests can
// run from any package directory.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("harness: no go.mod above %s", dir)
		}
		dir = parent
	}
}
