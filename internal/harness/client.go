package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// httpClient is the shared client for gateway API calls; per-call
// deadlines keep a wedged cluster from hanging the whole suite.
var httpClient = &http.Client{Timeout: 10 * time.Second}

// SearchResult is the decoded GET /v1/search/{key} answer plus transport
// facts assertions need (status code, Retry-After header).
type SearchResult struct {
	Status     int
	RetryAfter string
	Values     []string
	Hops       int
}

// Search runs one exact lookup through the gateway. A non-2xx answer is
// not an error — the result carries the status so tests can assert on
// 404s and 503s directly; err is reserved for transport failures.
func (g *Gate) Search(key string) (*SearchResult, error) {
	resp, err := httpClient.Get(g.URL + "/v1/search/" + url.PathEscape(key))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	res := &SearchResult{Status: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return res, nil
	}
	var body struct {
		Items []struct {
			Value string `json:"value"`
		} `json:"items"`
		Hops int `json:"hops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("harness: decode search %q: %w", key, err)
	}
	res.Hops = body.Hops
	for _, it := range body.Items {
		res.Values = append(res.Values, it.Value)
	}
	return res, nil
}

// Put inserts one key/value pair through the gateway.
func (g *Gate) Put(key, value string) error {
	body, _ := json.Marshal(map[string]string{"value": value})
	req, err := http.NewRequest(http.MethodPut, g.URL+"/v1/items/"+url.PathEscape(key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("harness: put %q: status %d: %s", key, resp.StatusCode, b)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Delete removes one key/value pair through the gateway.
func (g *Gate) Delete(key, value string) error {
	req, err := http.NewRequest(http.MethodDelete,
		g.URL+"/v1/items/"+url.PathEscape(key)+"?value="+url.QueryEscape(value), nil)
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("harness: delete %q: status %d: %s", key, resp.StatusCode, b)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// BatchEntry is one key's outcome in a POST /v1/batch answer.
type BatchEntry struct {
	Key    string
	Found  bool
	Values []string
}

// Batch looks up several keys in one gateway round trip.
func (g *Gate) Batch(keys []string) ([]BatchEntry, error) {
	reqBody, _ := json.Marshal(map[string]any{"keys": keys})
	resp, err := httpClient.Post(g.URL+"/v1/batch", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("harness: batch: status %d: %s", resp.StatusCode, b)
	}
	var body struct {
		Results []struct {
			Key   string `json:"key"`
			Found bool   `json:"found"`
			Items []struct {
				Value string `json:"value"`
			} `json:"items"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("harness: decode batch: %w", err)
	}
	out := make([]BatchEntry, 0, len(body.Results))
	for _, r := range body.Results {
		e := BatchEntry{Key: r.Key, Found: r.Found}
		for _, it := range r.Items {
			e.Values = append(e.Values, it.Value)
		}
		out = append(out, e)
	}
	return out, nil
}

// Range runs a lexicographic range query [lo, hi] through the gateway and
// returns the matched values.
func (g *Gate) Range(lo, hi string) ([]string, error) {
	resp, err := httpClient.Get(g.URL + "/v1/range?lo=" + url.QueryEscape(lo) + "&hi=" + url.QueryEscape(hi))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("harness: range [%s, %s]: status %d: %s", lo, hi, resp.StatusCode, b)
	}
	var body struct {
		Items []struct {
			Value string `json:"value"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("harness: decode range: %w", err)
	}
	var vals []string
	for _, it := range body.Items {
		vals = append(vals, it.Value)
	}
	return vals, nil
}

// Ready reports whether the gateway's /readyz answers 200 right now.
func (g *Gate) Ready() bool {
	resp, err := httpClient.Get(g.URL + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
