package harness

import (
	"fmt"
	"time"
)

// ChurnOptions parameterises a rolling churn run.
type ChurnOptions struct {
	// Rounds is how many kill/rejoin waves to run.
	Rounds int
	// Fraction of the fleet crashed per wave (0 = one third).
	Fraction float64
	// Graceful uses SIGTERM (checkpointed shutdown) instead of the
	// default SIGKILL crash.
	Graceful bool
	// DownFor is how long a wave's victims stay dead before restarting
	// (0 = 500ms).
	DownFor time.Duration
	// Spare lists node indices never chosen as victims (e.g. the
	// gateway's entry peers, so reads keep flowing mid-churn).
	Spare []int
}

// ChurnReport summarises what a churn run did.
type ChurnReport struct {
	Waves    int
	Killed   int
	Restarts int
}

// Churn runs rolling kill/rejoin waves: each wave picks a random
// Fraction of the running fleet (minus spared nodes), crash- or
// term-stops them, waits DownFor, restarts them with their original
// addresses and data dirs, and waits for them to listen again. Victims
// are chosen per wave, so over several waves most of the fleet gets
// bounced — the process-level equivalent of the sim's churn models.
func (c *Cluster) Churn(opts ChurnOptions) (*ChurnReport, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if opts.Fraction <= 0 {
		opts.Fraction = 1.0 / 3
	}
	if opts.DownFor <= 0 {
		opts.DownFor = 500 * time.Millisecond
	}
	spared := make(map[int]bool, len(opts.Spare))
	for _, idx := range opts.Spare {
		spared[idx] = true
	}
	rep := &ChurnReport{}
	for wave := 0; wave < opts.Rounds; wave++ {
		var candidates []*Node
		for _, n := range c.Nodes {
			if !spared[n.Index] && n.Running() {
				candidates = append(candidates, n)
			}
		}
		k := int(float64(len(candidates)) * opts.Fraction)
		if k < 1 {
			k = 1
		}
		if k > len(candidates) {
			k = len(candidates)
		}
		c.rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		victims := candidates[:k]

		for _, v := range victims {
			if opts.Graceful {
				if err := v.Stop(10 * time.Second); err != nil {
					return rep, fmt.Errorf("wave %d: stop %s: %w", wave, v.proc.name, err)
				}
			} else {
				if err := v.Kill(); err != nil {
					return rep, fmt.Errorf("wave %d: kill %s: %w", wave, v.proc.name, err)
				}
			}
			rep.Killed++
		}
		time.Sleep(opts.DownFor)
		for _, v := range victims {
			if err := v.Restart(); err != nil {
				return rep, fmt.Errorf("wave %d: restart %s: %w", wave, v.proc.name, err)
			}
			rep.Restarts++
		}
		for _, v := range victims {
			if err := v.WaitListening(20 * time.Second); err != nil {
				return rep, fmt.Errorf("wave %d: %w", wave, err)
			}
		}
		rep.Waves++
	}
	return rep, nil
}
