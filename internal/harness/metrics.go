package harness

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one parsed Prometheus-text /metrics scrape: sample name plus
// raw label block ("" for unlabelled samples) to value. It underlies the
// typed snapshots; assertions on metrics the snapshot does not surface go
// through Value/Sum.
type Metrics map[string]map[string]float64

// Value returns the sample with the exact label block (e.g.
// `{kind="delta"}`, or "" for an unlabelled metric).
func (m Metrics) Value(name, labels string) float64 {
	return m[name][labels]
}

// Sum adds every sample of name whose label block contains all the given
// substrings (e.g. Sum("pgrid_gate_requests_total", `route="search"`)).
func (m Metrics) Sum(name string, labelContains ...string) float64 {
	total := 0.0
	for labels, v := range m[name] {
		ok := true
		for _, want := range labelContains {
			if !strings.Contains(labels, want) {
				ok = false
				break
			}
		}
		if ok {
			total += v
		}
	}
	return total
}

// Names returns the scraped metric names, sorted (diagnostics).
func (m Metrics) Names() []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// parseMetrics reads Prometheus text exposition into a Metrics map. It
// understands exactly what the repo's stdlib-only exporter emits: `name
// value` and `name{labels} value` lines, with # comments.
func parseMetrics(r io.Reader) (Metrics, error) {
	m := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue // histogram "+Inf" etc. never hits this; be lenient
		}
		name, labels := series, ""
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name, labels = series[:br], series[br:]
		}
		if m[name] == nil {
			m[name] = make(map[string]float64)
		}
		m[name][labels] = val
	}
	return m, sc.Err()
}

// ScrapeMetrics fetches and parses url's /metrics exposition.
func ScrapeMetrics(url string) (Metrics, error) {
	resp, err := httpClient.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("harness: scrape %s: status %d", url, resp.StatusCode)
	}
	return parseMetrics(resp.Body)
}

// NodeMetrics is the typed snapshot of one node's /metrics scrape — the
// counters and gauges the churn and crash suites assert on, by name, with
// the full parse kept for everything else.
type NodeMetrics struct {
	// Store gauges.
	StoreItems      float64
	StoreTombstones float64
	StoreClock      float64
	WALRecords      float64
	WALSegments     float64
	// Anti-entropy sync classification (pgrid_peer_syncs_total by kind).
	SyncsInSync float64
	SyncsDelta  float64
	SyncsFull   float64
	// Protocol activity.
	Queries          float64
	Mutations        float64
	TombstonesPruned float64
	PathDepth        float64
	Replicas         float64

	Raw Metrics
}

// Metrics scrapes the node's /metrics into a typed snapshot. The node
// must serve the HTTP API.
func (n *Node) Metrics() (*NodeMetrics, error) {
	if n.HTTPAddr == "" {
		return nil, fmt.Errorf("harness: %s serves no HTTP API to scrape", n.proc.name)
	}
	raw, err := ScrapeMetrics("http://" + n.HTTPAddr)
	if err != nil {
		return nil, err
	}
	return &NodeMetrics{
		StoreItems:       raw.Value("pgrid_store_items", ""),
		StoreTombstones:  raw.Value("pgrid_store_tombstones", ""),
		StoreClock:       raw.Value("pgrid_store_clock", ""),
		WALRecords:       raw.Value("pgrid_store_wal_records", ""),
		WALSegments:      raw.Value("pgrid_store_wal_segments", ""),
		SyncsInSync:      raw.Value("pgrid_peer_syncs_total", `{kind="insync"}`),
		SyncsDelta:       raw.Value("pgrid_peer_syncs_total", `{kind="delta"}`),
		SyncsFull:        raw.Value("pgrid_peer_syncs_total", `{kind="full"}`),
		Queries:          raw.Value("pgrid_peer_queries_total", ""),
		Mutations:        raw.Value("pgrid_peer_mutations_total", ""),
		TombstonesPruned: raw.Value("pgrid_peer_tombstones_pruned_total", ""),
		PathDepth:        raw.Value("pgrid_peer_path_depth", ""),
		Replicas:         raw.Value("pgrid_peer_replicas", ""),
		Raw:              raw,
	}, nil
}

// GateMetrics is the typed snapshot of the gateway's /metrics scrape.
type GateMetrics struct {
	Ready         float64
	Inflight      float64
	Shed          float64
	SearchOK      float64
	Search503     float64
	InsertOK      float64
	RequestsTotal float64

	Raw Metrics
}

// Metrics scrapes the gateway's /metrics into a typed snapshot.
func (g *Gate) Metrics() (*GateMetrics, error) {
	raw, err := ScrapeMetrics(g.URL)
	if err != nil {
		return nil, err
	}
	return &GateMetrics{
		Ready:         raw.Value("pgrid_gate_ready", ""),
		Inflight:      raw.Value("pgrid_gate_inflight_requests", ""),
		Shed:          raw.Value("pgrid_gate_shed_total", ""),
		SearchOK:      raw.Sum("pgrid_gate_requests_total", `route="search"`, `code="200"`),
		Search503:     raw.Sum("pgrid_gate_requests_total", `route="search"`, `code="503"`),
		InsertOK:      raw.Sum("pgrid_gate_requests_total", `route="insert"`, `code="200"`),
		RequestsTotal: raw.Sum("pgrid_gate_requests_total"),
		Raw:           raw,
	}, nil
}
