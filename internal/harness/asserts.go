package harness

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WaitConverged polls sampled searches through the gateway until every
// key resolves to its expected value, or the deadline passes. Keys are
// re-checked from scratch each pass (a key that resolved once can regress
// while a wave of restarted replicas is still syncing); convergence means
// one full pass where everything resolves.
func (c *Cluster) WaitConverged(keys map[string]string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastMissing []string
	for time.Now().Before(deadline) {
		lastMissing = lastMissing[:0]
		for key, want := range keys {
			res, err := c.Gate.Search(key)
			if err != nil {
				lastMissing = append(lastMissing, fmt.Sprintf("%s (transport: %v)", key, err))
				continue
			}
			if res.Status != http.StatusOK || !contains(res.Values, want) {
				lastMissing = append(lastMissing, fmt.Sprintf("%s (status %d, values %v)", key, res.Status, res.Values))
			}
		}
		if len(lastMissing) == 0 {
			return nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	sort.Strings(lastMissing)
	if len(lastMissing) > 10 {
		lastMissing = append(lastMissing[:10], fmt.Sprintf("... and %d more", len(lastMissing)-10))
	}
	return fmt.Errorf("harness: %d key(s) not converged after %v:\n  %s",
		len(lastMissing), timeout, strings.Join(lastMissing, "\n  "))
}

// WaitAbsent polls until no deleted value resolves through the gateway
// any more — the no-resurrection assertion after deletes survive a churn
// or crash wave. It takes key → deleted value because absence must be
// checked per value, not per status: distinct keys that share a binary
// prefix at trie depth are one exact-match partition, so a search for a
// deleted key can legitimately answer 200 with the survivors' values.
func (c *Cluster) WaitAbsent(deleted map[string]string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastAlive []string
	for time.Now().Before(deadline) {
		lastAlive = lastAlive[:0]
		for key, gone := range deleted {
			res, err := c.Gate.Search(key)
			if err != nil {
				lastAlive = append(lastAlive, fmt.Sprintf("%s (transport: %v)", key, err))
				continue
			}
			if res.Status != http.StatusNotFound && contains(res.Values, gone) {
				lastAlive = append(lastAlive, fmt.Sprintf("%s (status %d, values %v)", key, res.Status, res.Values))
			}
		}
		if len(lastAlive) == 0 {
			return nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	sort.Strings(lastAlive)
	return fmt.Errorf("harness: %d deleted key(s) still resolve after %v (resurrection?):\n  %s",
		len(lastAlive), timeout, strings.Join(lastAlive, "\n  "))
}

// LoadKeys inserts n generated key/value pairs through the gateway and
// returns the expected mapping for WaitConverged. Keys lead with two
// rotating characters because the keyspace encoding is order-preserving:
// a key's partition is decided by its first ~2.5 characters, so keys
// that all share a literal prefix would pile into a single partition and
// exercise no routing at all.
func (c *Cluster) LoadKeys(prefix string, n int) (map[string]string, error) {
	keys := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%c%c-%s-%04d", 'a'+i%26, 'a'+(i/26)%26, prefix, i)
		val := fmt.Sprintf("doc-%s-%04d", prefix, i)
		if err := c.Gate.Put(key, val); err != nil {
			return keys, err
		}
		keys[key] = val
	}
	return keys, nil
}

func contains(vals []string, want string) bool {
	for _, v := range vals {
		if v == want {
			return true
		}
	}
	return false
}
