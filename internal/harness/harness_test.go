package harness

import (
	"net/http"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestClusterSmoke is the process-level smoke suite: the boot / workload /
// scrape / clean-shutdown / recovery path that scripts/smoke.sh used to
// hand-roll in bash now runs through the same harness the churn suites
// use. Three pgridnode processes over the pooled TCP transport, one
// pgridgate, an HTTP workload, typed metrics assertions, then a SIGTERM
// checkpointed shutdown and a snapshot-only restart.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	c, err := New(Options{
		Nodes:     3,
		Durable:   true,
		HTTPNodes: 1,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v\n%s", err, c.LogTails(20))
	}
	if err := c.StartGate(); err != nil {
		t.Fatalf("gate: %v\n%s", err, c.LogTails(20))
	}

	// Workload: inserts, lookups, a delete — all through the gateway.
	keys, err := c.LoadKeys("smoke", 6)
	if err != nil {
		t.Fatalf("load keys: %v\n%s", err, c.LogTails(20))
	}
	if err := c.WaitConverged(keys, 30*time.Second); err != nil {
		t.Fatalf("%v\n%s", err, c.LogTails(20))
	}
	res, err := c.Gate.Search("never-inserted-key")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusNotFound {
		t.Errorf("absent key returned %d, want 404", res.Status)
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	// Batch: hits report found with values, the missing key reports
	// found=false in the same answer. Entries come back in request order
	// (the response keys are bit-strings, not the original terms). Polled
	// like every other read assertion: a batch can transiently dead-end
	// while construction interactions are still splitting partitions.
	queried := []string{sorted[0], sorted[1], "never-inserted-key"}
	batchDeadline := time.Now().Add(30 * time.Second)
	for {
		entries, err := c.Gate.Batch(queried)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("batch returned %d entries, want 3", len(entries))
		}
		if entries[2].Found {
			t.Fatalf("batch reported the never-inserted key as found: %+v", entries[2])
		}
		ok := true
		for i, e := range entries[:2] {
			if !e.Found || !contains(e.Values, keys[queried[i]]) {
				ok = false
				if time.Now().After(batchDeadline) {
					t.Fatalf("batch entry %s: found=%v values=%v, want %q", queried[i], e.Found, e.Values, keys[queried[i]])
				}
			}
		}
		if ok {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	// Range: a sweep past the whole generated key block sees every
	// inserted value (hi is past the last key — the bound lands between
	// partitions at encoding depth, so an exact-endpoint hi can exclude
	// the endpoint's own partition).
	rangeVals, err := c.Gate.Range(sorted[0], "zz")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range keys {
		if !contains(rangeVals, v) {
			t.Errorf("range [%s, zz] missing %s=%s (got %d values)", sorted[0], k, v, len(rangeVals))
		}
	}

	victim := sorted[3]
	if err := c.Gate.Delete(victim, keys[victim]); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAbsent(map[string]string{victim: keys[victim]}, 30*time.Second); err != nil {
		t.Errorf("%v\n%s", err, c.LogTails(20))
	}

	// A node without HTTP is probed through a wire-level routed query —
	// the readiness path real deployments without a front door rely on.
	if err := WaitProbeGet(c.Nodes[1].Addr, sorted[0], 30*time.Second); err != nil {
		t.Errorf("-get probe: %v", err)
	}

	// Typed metrics snapshots, gateway and node.
	gm, err := c.Gate.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if gm.InsertOK < 6 {
		t.Errorf("gate insert counter %v, want >= 6", gm.InsertOK)
	}
	if gm.SearchOK < 1 {
		t.Errorf("gate search counter %v, want >= 1", gm.SearchOK)
	}
	if gm.Raw.Sum("pgrid_gate_request_duration_seconds_bucket") == 0 {
		t.Error("gate latency histogram missing")
	}
	nm, err := c.Nodes[0].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if nm.StoreClock < 1 {
		t.Errorf("node 0 store clock %v after workload, want >= 1", nm.StoreClock)
	}
	if _, ok := nm.Raw["pgrid_peer_queries_total"]; !ok {
		t.Error("node 0 peer counters missing")
	}

	// Graceful shutdown: gateway first, then the durable node. Both must
	// exit 0 and log their clean-shutdown line.
	if err := c.Gate.stop(10 * time.Second); err != nil {
		t.Fatalf("gate SIGTERM: %v\n%s", err, c.Gate.logTail(20))
	}
	if !strings.Contains(c.Gate.log(), "clean shutdown") {
		t.Errorf("gateway did not log a clean shutdown:\n%s", c.Gate.logTail(20))
	}
	n0 := c.Nodes[0]
	if err := n0.Stop(15 * time.Second); err != nil {
		t.Fatalf("node 0 SIGTERM: %v\n%s", err, n0.logTail(20))
	}
	if !n0.LogContains("clean shutdown") {
		t.Errorf("node 0 did not log a clean shutdown:\n%s", n0.logTail(20))
	}

	// Restart: same address, same data dir. Recovery must come from the
	// snapshot alone (checkpointed shutdown leaves an empty WAL tail) and
	// must bring the items back.
	if err := n0.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := n0.WaitListening(20 * time.Second); err != nil {
		t.Fatalf("%v", err)
	}
	if err := n0.WaitHTTPReady(20 * time.Second); err != nil {
		t.Fatalf("%v", err)
	}
	if !n0.LogContains("recovered durable state") {
		t.Errorf("restart did not recover durable state:\n%s", n0.logTail(20))
	}
	nm, err = n0.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if nm.WALRecords != 0 {
		t.Errorf("WAL tail not empty after checkpointed shutdown: %v records", nm.WALRecords)
	}
	if nm.StoreItems < 1 {
		t.Error("restarted node recovered no items")
	}
}

// TestMain keeps the shared binary build's temp dir alive for the whole
// package run and removes it afterwards.
func TestMain(m *testing.M) {
	code := m.Run()
	if binaries.dir != "" {
		os.RemoveAll(binaries.dir)
	}
	os.Exit(code)
}
