package harness

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pgrid/internal/gate"
	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
)

// ProbeGet issues one exact-match query for term against the node
// listening at addr, over the real binary TCP transport — the readiness
// probe for nodes that serve no HTTP API. The contacted node routes the
// query onward like any forwarded request, so a successful probe means
// the node's server loop, codec, and routing state are all live. It
// returns whether the term resolved to at least one item; err reports
// probe-level failures (node unreachable, routing exhausted), not a
// clean not-found.
//
// A subprocess `pgridnode -get` probe cannot serve this purpose: a fresh
// joiner sits at path ε, considers itself responsible for every key, and
// answers the query from its own empty store.
func ProbeGet(addr, term string, timeout time.Duration) (found bool, err error) {
	ep, err := network.ListenTCP("127.0.0.1:0")
	if err != nil {
		return false, fmt.Errorf("harness: probe endpoint: %w", err)
	}
	defer ep.Close()
	key, err := keyspace.EncodeString(term, keyspace.DefaultDepth)
	if err != nil {
		return false, fmt.Errorf("harness: probe term %q: %w", term, err)
	}
	backend := &gate.RemoteBackend{
		Transport: ep,
		Peers:     []network.Addr{network.Addr(addr)},
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, err = backend.Search(ctx, key, gate.SearchOptions{})
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, overlay.ErrNotFound):
		return false, nil
	default:
		return false, fmt.Errorf("harness: -get probe of %s: %w", addr, err)
	}
}

// WaitProbeGet polls ProbeGet until the term is found or the deadline
// passes — the no-HTTP readiness wait: a node is "ready" when a routed
// query through it resolves.
func WaitProbeGet(addr, term string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		found, err := ProbeGet(addr, term, 3*time.Second)
		if found {
			return nil
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("harness: %q never resolved through %s within %v (last: %v)", term, addr, timeout, lastErr)
}
