package harness

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// proc wraps one managed child process: start, structured log capture,
// graceful stop, hard kill, exit-status collection, and restart with the
// identical command line. It is the shared machinery under Node and Gate.
type proc struct {
	name    string // display name, e.g. "node-07" or "gate"
	binary  string
	args    []string
	logPath string

	mu      sync.Mutex
	cmd     *exec.Cmd
	logFile *os.File
	waitCh  chan struct{}
	waitErr error
	starts  int
}

// start launches the process, appending its combined output to the log
// file (restarts keep appending, separated by a banner, so one file holds
// the node's whole lifecycle).
func (p *proc) start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil {
		return fmt.Errorf("harness: %s already running", p.name)
	}
	f, err := os.OpenFile(p.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	p.starts++
	fmt.Fprintf(f, "=== %s start #%d: %s %s\n", p.name, p.starts, p.binary, strings.Join(p.args, " "))
	cmd := exec.Command(p.binary, p.args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		return fmt.Errorf("harness: start %s: %w", p.name, err)
	}
	p.cmd = cmd
	p.logFile = f
	ch := make(chan struct{})
	p.waitCh = ch
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.waitErr = err
		p.cmd = nil
		p.logFile.Close()
		p.logFile = nil
		p.mu.Unlock()
		close(ch)
	}()
	return nil
}

// running reports whether the process is currently alive.
func (p *proc) running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cmd != nil
}

// signal sends sig to the running process.
func (p *proc) signal(sig syscall.Signal) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return fmt.Errorf("harness: %s not running", p.name)
	}
	return p.cmd.Process.Signal(sig)
}

// waitExit blocks until the process exits (returning its Wait error) or
// the timeout elapses.
func (p *proc) waitExit(timeout time.Duration) error {
	p.mu.Lock()
	ch := p.waitCh
	p.mu.Unlock()
	if ch == nil {
		return fmt.Errorf("harness: %s never started", p.name)
	}
	select {
	case <-ch:
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.waitErr
	case <-time.After(timeout):
		return fmt.Errorf("harness: %s still running after %v", p.name, timeout)
	}
}

// stop performs a graceful shutdown: SIGTERM, then SIGKILL if the process
// outlives the timeout. It returns the process's exit error (nil for a
// clean exit 0).
func (p *proc) stop(timeout time.Duration) error {
	if err := p.signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := p.waitExit(timeout); err != nil {
		_ = p.signal(syscall.SIGKILL)
		<-p.waitChan()
		return fmt.Errorf("harness: %s ignored SIGTERM for %v, killed", p.name, timeout)
	}
	return nil
}

// kill hard-kills the process (SIGKILL) and waits for it to be reaped —
// the harness's crash primitive: no drain, no checkpoint, whatever was
// mid-write stays torn.
func (p *proc) kill() error {
	if err := p.signal(syscall.SIGKILL); err != nil {
		return err
	}
	<-p.waitChan()
	return nil
}

func (p *proc) waitChan() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.waitCh == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return p.waitCh
}

// log returns the process's captured output so far (all starts).
func (p *proc) log() string {
	b, err := os.ReadFile(p.logPath)
	if err != nil {
		return ""
	}
	return string(b)
}

// logTail returns the last n lines of the captured output.
func (p *proc) logTail(n int) string {
	lines := strings.Split(strings.TrimRight(p.log(), "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// Node is one managed pgridnode process.
type Node struct {
	proc
	// Index is the node's position in the cluster (node 0 bootstraps).
	Index int
	// Addr is the node's protocol listen address — its identity in every
	// other peer's routing table, stable across restarts.
	Addr string
	// HTTPAddr is the node's gateway-API address ("" when the node does
	// not serve HTTP).
	HTTPAddr string
	// DataDir is the node's durable state directory ("" when volatile).
	DataDir string
}

// Running reports whether the node's process is alive.
func (n *Node) Running() bool { return n.running() }

// Stop shuts the node down gracefully (SIGTERM → checkpoint → exit 0) and
// returns its exit error.
func (n *Node) Stop(timeout time.Duration) error { return n.stop(timeout) }

// Kill crash-stops the node with SIGKILL and waits for the process to be
// reaped.
func (n *Node) Kill() error { return n.kill() }

// Signal sends an arbitrary signal to the node.
func (n *Node) Signal(sig syscall.Signal) error { return n.signal(sig) }

// WaitExit blocks until the node's process exits or the timeout elapses.
func (n *Node) WaitExit(timeout time.Duration) error { return n.waitExit(timeout) }

// Restart relaunches the node with its original command line — same
// listen address, same data dir — so it rejoins the overlay under its old
// identity, recovering whatever its data dir holds.
func (n *Node) Restart() error { return n.start() }

// Log returns the node's captured output (all starts, concatenated).
func (n *Node) Log() string { return n.log() }

// LogContains reports whether the captured output contains s.
func (n *Node) LogContains(s string) bool { return strings.Contains(n.log(), s) }

// WaitListening polls the node's protocol port until a TCP connection is
// accepted — the node's transport is up and its overlay state (including
// any durable recovery) is constructed, because pgridnode only listens
// after NewPersistent returns.
func (n *Node) WaitListening(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", n.Addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		if !n.Running() {
			return fmt.Errorf("harness: %s exited while waiting for listen: log tail:\n%s", n.name, n.logTail(15))
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("harness: %s not listening on %s after %v; log tail:\n%s", n.name, n.Addr, timeout, n.logTail(15))
}

// WaitHTTPReady polls the node's /healthz until it answers 200.
func (n *Node) WaitHTTPReady(timeout time.Duration) error {
	if n.HTTPAddr == "" {
		return fmt.Errorf("harness: %s serves no HTTP API", n.name)
	}
	return waitHTTP("http://"+n.HTTPAddr+"/healthz", n.name, timeout)
}

// waitHTTP polls url until a 2xx answer or the deadline.
func waitHTTP(url, what string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("harness: %s not ready at %s after %v (last: %v)", what, url, timeout, lastErr)
}
