// Package harness boots and torments clusters of real pgridnode processes
// over the pooled binary TCP transport, turning the repo's churn and
// crash-recovery claims from in-process-simulator claims into
// process-level ones. It owns the full lifecycle: port allocation, data
// directories, bootstrap ordering, readiness waits (TCP accept, /healthz,
// one-shot -get probes), structured per-node log capture, fault injection
// (graceful SIGTERM, hard SIGKILL mid-write, restart with the same data
// dir and address, rolling churn at a configurable rate) and cluster-wide
// assertions (key convergence through a fronting pgridgate, /metrics
// scraped into typed snapshots).
//
// The default suite in this package replaces the hand-rolled
// scripts/smoke.sh logic; the 50+ process churn/crash suite is gated
// behind PGRID_PROC=1 (see churn_proc_test.go).
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// Options parameterises a Cluster.
type Options struct {
	// Nodes is the fleet size (>= 1; node 0 is the bootstrap).
	Nodes int
	// Engine selects the storage engine passed to every node ("", "mem" or
	// "disk"). "disk" implies Durable (the disk engine needs a data dir).
	Engine string
	// Durable gives every node a data dir (WAL + snapshots), making
	// SIGKILL + restart a recovery event instead of a rebuild.
	Durable bool
	// HTTPNodes serves the gateway HTTP API (and therefore /metrics) on
	// the first HTTPNodes nodes. Zero means node 0 only.
	HTTPNodes int
	// Maintain is each node's background maintenance interval (0 =
	// 250ms) — anti-entropy is what makes a rejoined node converge.
	Maintain time.Duration
	// Serve is each node's -serve duration, an upper bound on the test's
	// lifetime (0 = 10m).
	Serve time.Duration
	// Interactions is the number of construction interactions a joining
	// node runs against its join target (0 = 4).
	Interactions int
	// Nmin and Dmax override the replication/storage-load parameters
	// (0 = pgridnode defaults: nmin 2, dmax 20).
	Nmin, Dmax int
	// Seed drives the harness's own randomness (join-target selection,
	// churn victim selection). Zero means 1.
	Seed int64
	// BaseDir is where per-node data dirs and logs live. Empty uses a
	// fresh temp dir; the PGRID_HARNESS_DIR environment variable overrides
	// the default so CI can collect logs as artifacts.
	BaseDir string
	// KeepDir leaves BaseDir in place at Close (automatic when
	// PGRID_HARNESS_DIR is set).
	KeepDir bool
}

// Cluster is a running fleet of pgridnode processes, optionally fronted
// by one pgridgate.
type Cluster struct {
	Opts  Options
	Dir   string
	Nodes []*Node
	Gate  *Gate

	nodeBin, gateBin string
	rng              *rand.Rand
	keep             bool
}

// Gate is the managed pgridgate process fronting a cluster.
type Gate struct {
	proc
	// URL is the gateway's HTTP base URL.
	URL string
	// Peers are the entry-peer addresses the gateway rotates over.
	Peers []string
}

// New prepares a cluster: builds the binaries (once per test process),
// allocates stable ports and creates the directory layout. No process is
// started yet — call Start.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("harness: need at least one node, got %d", opts.Nodes)
	}
	if opts.Engine == "disk" {
		opts.Durable = true
	}
	if opts.HTTPNodes <= 0 {
		opts.HTTPNodes = 1
	}
	if opts.HTTPNodes > opts.Nodes {
		opts.HTTPNodes = opts.Nodes
	}
	if opts.Maintain <= 0 {
		opts.Maintain = 250 * time.Millisecond
	}
	if opts.Serve <= 0 {
		opts.Serve = 10 * time.Minute
	}
	if opts.Interactions <= 0 {
		opts.Interactions = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	nodeBin, gateBin, err := BuildBinaries()
	if err != nil {
		return nil, err
	}

	keep := opts.KeepDir
	base := opts.BaseDir
	if base == "" {
		if env := os.Getenv("PGRID_HARNESS_DIR"); env != "" {
			base = env
			keep = true
		}
	}
	var dir string
	if base == "" {
		dir, err = os.MkdirTemp("", "pgrid-harness-")
	} else {
		dir = filepath.Join(base, fmt.Sprintf("cluster-%d", time.Now().UnixNano()))
		err = os.MkdirAll(dir, 0o755)
	}
	if err != nil {
		return nil, err
	}

	// One protocol port per node, one HTTP port per API-serving node, one
	// for the gateway.
	ports, err := allocatePorts(opts.Nodes + opts.HTTPNodes + 1)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Opts:    opts,
		Dir:     dir,
		nodeBin: nodeBin,
		gateBin: gateBin,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		keep:    keep,
	}
	for i := 0; i < opts.Nodes; i++ {
		n := &Node{
			Index: i,
			Addr:  fmt.Sprintf("127.0.0.1:%d", ports[i]),
		}
		if i < opts.HTTPNodes {
			n.HTTPAddr = fmt.Sprintf("127.0.0.1:%d", ports[opts.Nodes+i])
		}
		if opts.Durable {
			n.DataDir = filepath.Join(dir, fmt.Sprintf("data-%03d", i))
			if err := os.MkdirAll(n.DataDir, 0o755); err != nil {
				return nil, err
			}
		}
		n.proc = proc{
			name:    fmt.Sprintf("node-%03d", i),
			binary:  nodeBin,
			logPath: filepath.Join(dir, fmt.Sprintf("node-%03d.log", i)),
		}
		n.proc.args = c.nodeArgs(n, "")
		c.Nodes = append(c.Nodes, n)
	}
	gatePort := ports[len(ports)-1]
	c.Gate = &Gate{
		proc: proc{
			name:    "gate",
			binary:  gateBin,
			logPath: filepath.Join(dir, "gate.log"),
		},
		URL: fmt.Sprintf("http://127.0.0.1:%d", gatePort),
	}
	return c, nil
}

// nodeArgs assembles a node's full command line. join is the bootstrap
// target ("" for node 0).
func (c *Cluster) nodeArgs(n *Node, join string) []string {
	args := []string{
		"-listen", n.Addr,
		"-serve", c.Opts.Serve.String(),
		"-maintain", c.Opts.Maintain.String(),
	}
	if join != "" {
		args = append(args, "-join", join, "-interactions", fmt.Sprint(c.Opts.Interactions))
	}
	if n.HTTPAddr != "" {
		args = append(args, "-http", n.HTTPAddr)
	}
	if n.DataDir != "" {
		args = append(args, "-data-dir", n.DataDir)
	}
	if c.Opts.Engine != "" {
		args = append(args, "-engine", c.Opts.Engine)
	}
	if c.Opts.Nmin > 0 {
		args = append(args, "-nmin", fmt.Sprint(c.Opts.Nmin))
	}
	if c.Opts.Dmax > 0 {
		args = append(args, "-dmax", fmt.Sprint(c.Opts.Dmax))
	}
	return args
}

// Start boots the fleet in bootstrap order: node 0 comes up first and
// every later node joins a random already-listening node, spreading the
// construction interactions instead of convoying on the bootstrap. Each
// node's TCP accept is awaited before it is offered as a join target.
func (c *Cluster) Start() error {
	for i, n := range c.Nodes {
		join := ""
		if i > 0 {
			join = c.Nodes[c.rng.Intn(i)].Addr
			n.proc.args = c.nodeArgs(n, join)
		}
		if err := n.start(); err != nil {
			return err
		}
		if err := n.WaitListening(20 * time.Second); err != nil {
			return err
		}
	}
	for i := 0; i < c.Opts.HTTPNodes; i++ {
		if err := c.Nodes[i].WaitHTTPReady(20 * time.Second); err != nil {
			return err
		}
	}
	return nil
}

// StartGate boots the pgridgate fronting the cluster. entry selects the
// entry-peer node indices (default: the first three nodes, or fewer).
func (c *Cluster) StartGate(entry ...int) error {
	if len(entry) == 0 {
		for i := 0; i < len(c.Nodes) && i < 3; i++ {
			entry = append(entry, i)
		}
	}
	args := []string{"-listen", c.Gate.URL[len("http://"):]}
	c.Gate.Peers = c.Gate.Peers[:0]
	for _, idx := range entry {
		args = append(args, "-peer", c.Nodes[idx].Addr)
		c.Gate.Peers = append(c.Gate.Peers, c.Nodes[idx].Addr)
	}
	c.Gate.proc.args = args
	if err := c.Gate.start(); err != nil {
		return err
	}
	return waitHTTP(c.Gate.URL+"/readyz", "gate", 20*time.Second)
}

// RestartRecovered restarts a durable node without its bootstrap -join
// arguments: the node must come back through pure durable-state recovery
// (persisted partition path, items, replica refs) and catch up via
// anti-entropy alone — the path a production restart takes. A restart
// with the original args instead re-runs construction interactions,
// which re-replicate missed data through the exchange path and mask the
// sync classification the crash suite pins.
func (c *Cluster) RestartRecovered(n *Node) error {
	if n.DataDir == "" {
		return fmt.Errorf("harness: %s has no data dir; a recovery restart needs durable state", n.proc.name)
	}
	n.proc.args = c.nodeArgs(n, "")
	return n.Restart()
}

// Running counts the nodes whose processes are currently alive.
func (c *Cluster) Running() int {
	n := 0
	for _, node := range c.Nodes {
		if node.Running() {
			n++
		}
	}
	return n
}

// Close tears the whole cluster down: gateway and nodes get a SIGTERM
// grace window, stragglers are killed, and the work dir is removed unless
// the cluster was asked to keep it (log collection). A kept cluster also
// gets a final /metrics scrape of every live HTTP endpoint written next
// to the logs, so CI failure artifacts carry the metrics state too.
func (c *Cluster) Close() {
	if c.keep {
		c.dumpMetrics()
	}
	if c.Gate != nil && c.Gate.running() {
		_ = c.Gate.stop(5 * time.Second)
	}
	for _, n := range c.Nodes {
		if n.Running() {
			_ = n.Signal(syscall.SIGTERM)
		}
	}
	for _, n := range c.Nodes {
		if n.Running() {
			if err := n.waitExit(5 * time.Second); err != nil {
				_ = n.kill()
			}
		}
	}
	if !c.keep {
		_ = os.RemoveAll(c.Dir)
	}
}

// dumpMetrics writes a raw final /metrics scrape for the gateway and every
// live HTTP node into the work dir (best-effort; dead endpoints are noted,
// not fatal).
func (c *Cluster) dumpMetrics() {
	scrapeTo := func(url, path string) {
		resp, err := httpClient.Get(url + "/metrics")
		if err != nil {
			_ = os.WriteFile(path, []byte(fmt.Sprintf("scrape failed: %v\n", err)), 0o644)
			return
		}
		defer resp.Body.Close()
		f, err := os.Create(path)
		if err != nil {
			return
		}
		defer f.Close()
		_, _ = io.Copy(f, resp.Body)
	}
	if c.Gate != nil && c.Gate.running() {
		scrapeTo(c.Gate.URL, filepath.Join(c.Dir, "gate.metrics"))
	}
	for _, n := range c.Nodes {
		if n.HTTPAddr != "" && n.Running() {
			scrapeTo("http://"+n.HTTPAddr, filepath.Join(c.Dir, n.proc.name+".metrics"))
		}
	}
}

// LogTails returns the last n lines of every process's log, labelled —
// the failure diagnostic a churn test attaches to t.Errorf output.
func (c *Cluster) LogTails(n int) string {
	out := ""
	for _, node := range c.Nodes {
		out += fmt.Sprintf("--- %s ---\n%s\n", node.proc.name, node.logTail(n))
	}
	if c.Gate != nil {
		out += fmt.Sprintf("--- gate ---\n%s\n", c.Gate.logTail(n))
	}
	return out
}
