// Package pgrid is a Go implementation of the P-Grid data-oriented overlay
// network and of the decentralized, parallel construction algorithm
// described in "Indexing data-oriented overlay networks" (Aberer, Datta,
// Hauswirth, Schmidt — VLDB 2005).
//
// Unlike a classical DHT, a P-Grid overlay preserves the order of
// application keys: the key space [0,1) is recursively bisected into a trie
// whose shape follows the data distribution, so prefix and range queries
// stay efficient even for heavily skewed key sets (inverted-file terms,
// range-partitioned tuples, ...). The price is that the overlay must be
// constructed — and, when the indexing function changes, re-constructed —
// from scratch; the library's centerpiece is the fully parallel,
// self-organizing construction protocol of the paper (adaptive eager
// partitioning plus the split/replicate/refer encounter rules), together
// with the storage- and replication-load balancing it provides.
//
// The top-level API revolves around Cluster, an in-process deployment of
// many peers (each backed by the simulated message-passing network) that
// applications use to index data and run keyword, exact-match and range
// queries:
//
//	cluster, _ := pgrid.NewCluster(pgrid.WithPeers(64))
//	cluster.IndexString("database", "doc-17")
//	cluster.IndexString("datalog", "doc-3")
//	report, _ := cluster.Build(ctx)
//	hits, _ := cluster.SearchString(ctx, "database")
//
// The internal packages expose the full substrate (decision probabilities,
// reference partitioner, routing tables, simulated and TCP transports,
// workload generators, experiment harnesses) used to reproduce every table
// and figure of the paper; see docs/ARCHITECTURE.md for the mapping.
package pgrid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
	"pgrid/internal/sim"
	"pgrid/internal/unstructured"
)

// Key is an order-preserving binary key in [0,1).
type Key = keyspace.Key

// Path identifies a key-space partition of the overlay trie.
type Path = keyspace.Path

// Item is one indexed data item: a key plus an opaque value (document id,
// tuple reference, ...).
type Item = replication.Item

// KeyDepth is the bit depth used for keys produced by the convenience
// encoders.
const KeyDepth = keyspace.DefaultDepth

// StringKey encodes a string (for example an inverted-file term) as an
// order-preserving key.
func StringKey(s string) Key { return keyspace.MustEncodeString(s, KeyDepth) }

// FloatKey encodes a value from [0,1) as an order-preserving key; values
// outside the interval are clamped.
func FloatKey(x float64) Key { return keyspace.MustFromFloat(x, KeyDepth) }

// Uint64Key encodes an unsigned integer (interpreted as the fraction
// v/2^64) as an order-preserving key.
func Uint64Key(v uint64) Key {
	k, _ := keyspace.EncodeUint64(v, KeyDepth)
	return k
}

// Cluster is an in-process P-Grid deployment: a set of peers connected by
// the simulated message-passing network, an unstructured bootstrap overlay,
// and the machinery to construct the structured overlay from the data that
// has been indexed.
type Cluster struct {
	cfg     options
	net     *network.Sim
	graph   *unstructured.Graph
	pending [][]Item
	built   bool

	// peersMu guards peers, which RestartPeer replaces copy-on-write: a
	// snapshot taken under the read lock stays immutable, so queries and
	// mutations can keep using it without holding the lock.
	peersMu sync.RWMutex
	peers   []*overlay.Peer

	// rngMu guards rng: queries and live mutations pick random origin peers
	// and may run concurrently.
	rngMu sync.Mutex
	rng   *rand.Rand

	// maintMu guards maintStops so Start/StopMaintenance and RestartPeer
	// are safe to call from concurrent goroutines.
	maintMu sync.Mutex
	// maintStops, when non-nil, stops the running background maintenance
	// loop of each peer (indexed like peers).
	maintStops []func()
}

// BuildReport summarises the outcome of constructing the overlay.
type BuildReport struct {
	// Rounds is the number of construction rounds executed.
	Rounds int
	// MeanPathLength and MaxPathLength describe the resulting trie depth.
	MeanPathLength float64
	MaxPathLength  int
	// DistinctPartitions is the number of distinct peer paths.
	DistinctPartitions int
	// MeanReplicasPerPartition is the average number of peers per path.
	MeanReplicasPerPartition float64
	// InteractionsPerPeer and KeysMovedPerPeer measure the construction
	// cost.
	InteractionsPerPeer float64
	KeysMovedPerPeer    float64
}

// String renders the report.
func (r BuildReport) String() string {
	return fmt.Sprintf("rounds=%d partitions=%d path-len=%.2f (max %d) replicas/partition=%.2f interactions/peer=%.2f keys-moved/peer=%.1f",
		r.Rounds, r.DistinctPartitions, r.MeanPathLength, r.MaxPathLength, r.MeanReplicasPerPartition, r.InteractionsPerPeer, r.KeysMovedPerPeer)
}

// SearchHit is one result of a search.
type SearchHit struct {
	// Key is the matched key.
	Key Key
	// Value is the stored value (document identifier, tuple, ...).
	Value string
	// Hops is the number of routing hops the query used.
	Hops int
}

// NewCluster creates a cluster of peers. By default the cluster has 32
// peers with the paper's load-balancing parameters (n_min = 5,
// d_max = 10*n_min).
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg := defaultOptions()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.peers < 2 {
		return nil, errors.New("pgrid: a cluster needs at least two peers")
	}
	c := &Cluster{
		cfg: cfg,
		net: network.NewSim(network.SimConfig{Seed: cfg.seed, Latency: cfg.latency, LossProbability: cfg.loss, Service: cfg.service}),
		rng: rand.New(rand.NewSource(cfg.seed)),
	}
	addrs := make([]network.Addr, cfg.peers)
	for i := 0; i < cfg.peers; i++ {
		addr := network.Addr(fmt.Sprintf("peer-%05d", i))
		addrs[i] = addr
		p, err := overlay.NewPersistent(c.peerConfig(i), c.net.Endpoint(addr))
		if err != nil {
			_ = c.closePeers() // release the WALs of the peers already opened
			return nil, fmt.Errorf("pgrid: open peer %d: %w", i, err)
		}
		c.peers = append(c.peers, p)
	}
	c.pending = make([][]Item, cfg.peers)
	c.graph = unstructured.NewGraph(addrs, cfg.degree, cfg.seed+1)
	return c, nil
}

// peerConfig returns the overlay configuration of the i-th peer, including
// its persistence directory when WithPersistence is set.
func (c *Cluster) peerConfig(i int) overlay.Config {
	pcfg := c.cfg.overlay
	pcfg.Seed = c.cfg.seed + int64(i)*31337
	if c.cfg.dataDir != "" {
		pcfg.DataDir = filepath.Join(c.cfg.dataDir, fmt.Sprintf("peer-%05d", i))
	}
	return pcfg
}

// peerList returns a race-free snapshot of the peer slice (RestartPeer
// replaces it copy-on-write, so a snapshot stays immutable).
func (c *Cluster) peerList() []*overlay.Peer {
	c.peersMu.RLock()
	defer c.peersMu.RUnlock()
	return c.peers
}

// closePeers closes every peer's persistence, keeping the first error.
func (c *Cluster) closePeers() error {
	var first error
	for _, p := range c.peerList() {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// randIntn draws a uniform int from [0, n) under the RNG lock, so queries
// and live mutations can run from concurrent goroutines.
func (c *Cluster) randIntn(n int) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Intn(n)
}

// randPerm draws a random permutation under the RNG lock.
func (c *Cluster) randPerm(n int) []int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Perm(n)
}

// randomPeer picks a uniformly random peer as the origin of an operation.
func (c *Cluster) randomPeer() *overlay.Peer {
	peers := c.peerList()
	return peers[c.randIntn(len(peers))]
}

// Peers returns the number of peers in the cluster.
func (c *Cluster) Peers() int { return len(c.peerList()) }

// Peer returns the i-th peer (for advanced use and inspection).
func (c *Cluster) Peer(i int) *overlay.Peer {
	peers := c.peerList()
	return peers[i%len(peers)]
}

// Paths returns the current path of every peer.
func (c *Cluster) Paths() []Path {
	peers := c.peerList()
	out := make([]Path, len(peers))
	for i, p := range peers {
		out[i] = p.Path()
	}
	return out
}

// Index adds an item to the cluster, assigning it to a peer chosen uniformly
// at random (mirroring data that is born distributed). Items indexed before
// Build become part of the constructed overlay; items indexed afterwards are
// stored at the responsible partition directly.
func (c *Cluster) Index(key Key, value string) error {
	it := Item{Key: key, Value: value}
	peers := c.peerList()
	owner := c.randIntn(len(peers))
	if !c.built {
		c.pending[owner] = append(c.pending[owner], it)
		peers[owner].AddItems([]Item{it})
		return nil
	}
	// After construction, store the item at every peer whose partition
	// covers the key (the responsible peer and its replicas). In a real
	// deployment the item would be routed to one responsible peer and
	// spread by anti-entropy; writing to all replicas here keeps the
	// in-process cluster immediately consistent.
	stored := false
	for _, p := range peers {
		if p.Table().Responsible(key) {
			p.AddItems([]Item{it})
			stored = true
		}
	}
	if !stored {
		peers[owner].AddItems([]Item{it})
	}
	return nil
}

// IndexString indexes a string key (for example a term of an inverted
// file).
func (c *Cluster) IndexString(term, value string) error {
	return c.Index(StringKey(term), value)
}

// IndexFloat indexes a numeric key from [0,1).
func (c *Cluster) IndexFloat(x float64, value string) error {
	return c.Index(FloatKey(x), value)
}

// Build constructs the structured overlay from the indexed data: the
// pre-construction replication phase followed by rounds of random
// encounters until every peer converges (Sections 2.2 and 4 of the paper).
func (c *Cluster) Build(ctx context.Context) (BuildReport, error) {
	if c.built {
		return BuildReport{}, errors.New("pgrid: cluster already built; create a new cluster to re-index")
	}
	// Replication phase: push each peer's own items to MinReplicas peers.
	nmin := c.cfg.overlay.MinReplicas
	if nmin <= 0 {
		nmin = 5
	}
	peers := c.peerList()
	for i, p := range peers {
		if len(c.pending[i]) == 0 {
			continue
		}
		targets := make([]network.Addr, 0, nmin)
		for attempts := 0; len(targets) < nmin && attempts < 10*nmin; attempts++ {
			cand, err := c.graph.RandomWalk(p.Addr(), 0, nil)
			if err == nil && cand != p.Addr() {
				targets = append(targets, cand)
			}
		}
		if err := p.ReplicateItems(ctx, c.pending[i], targets); err != nil {
			return BuildReport{}, err
		}
	}
	// Construction phase.
	rounds := 0
	maxRounds := c.cfg.maxRounds
	for ; rounds < maxRounds; rounds++ {
		active := 0
		for _, idx := range c.randPerm(len(peers)) {
			p := peers[idx]
			if p.Done() {
				continue
			}
			partner, err := c.graph.RandomWalk(p.Addr(), 0, nil)
			if err != nil || partner == p.Addr() {
				continue
			}
			active++
			_, _ = p.Interact(ctx, partner)
		}
		if active == 0 {
			break
		}
	}
	c.built = true
	return c.report(rounds), nil
}

// report assembles a BuildReport from the peers' state.
func (c *Cluster) report(rounds int) BuildReport {
	rep := BuildReport{Rounds: rounds}
	counts := map[Path]int{}
	var pathLen, interactions, keysMoved float64
	peers := c.peerList()
	for _, p := range peers {
		d := p.Path().Depth()
		pathLen += float64(d)
		if d > rep.MaxPathLength {
			rep.MaxPathLength = d
		}
		counts[p.Path()]++
		interactions += p.Metrics.Interactions.Value()
		keysMoved += p.Metrics.KeysMoved.Value()
	}
	n := float64(len(peers))
	rep.MeanPathLength = pathLen / n
	rep.DistinctPartitions = len(counts)
	if len(counts) > 0 {
		rep.MeanReplicasPerPartition = n / float64(len(counts))
	}
	rep.InteractionsPerPeer = interactions / n
	rep.KeysMovedPerPeer = keysMoved / n
	return rep
}

// Built reports whether the overlay has been constructed.
func (c *Cluster) Built() bool { return c.built }

// ErrNotBuilt is returned by live mutations invoked before Build: until the
// overlay exists there is nothing to route through — use Index instead.
var ErrNotBuilt = errors.New("pgrid: live mutations require a built overlay; use Index before Build")

// ErrNoQuorum is returned by Insert and Delete when the responsible peer was
// reached but fewer replicas than the configured write quorum acknowledged
// the mutation. The write is still applied at the replicas that did
// acknowledge, and background maintenance spreads it further.
var ErrNoQuorum = overlay.ErrNoQuorum

// ErrNotFound classifies a lookup that reached the responsible partition
// and found nothing under the key — the overlay is healthy, the key is
// absent. Service layers map it to 404.
var ErrNotFound = overlay.ErrNotFound

// ErrUnreachable classifies an operation that could not reach the
// partition responsible for its key at all (routing exhausted its
// references, every candidate offline). Unlike ErrNotFound it signals an
// overlay problem, not an absent key; service layers map it to 503.
var ErrUnreachable = overlay.ErrUnreachable

// MetricsSnapshot aggregates every peer's protocol counters and replication
// gauges into one cluster-wide overlay.MetricsSnapshot: counters sum, size
// gauges (items, tombstones, replica links, WAL shape) sum, and the
// per-peer partition path is cleared. Each peer is snapshotted with atomic
// loads, so this is safe to call while searches, mutations and maintenance
// run.
func (c *Cluster) MetricsSnapshot() overlay.MetricsSnapshot {
	var agg overlay.MetricsSnapshot
	for _, p := range c.peerList() {
		agg = agg.Merge(p.MetricsSnapshot())
	}
	return agg
}

// MutateReport summarises a routed live write.
type MutateReport struct {
	// Acks is the number of replicas (including the responsible peer) that
	// applied the mutation.
	Acks int
	// Replicas is the size of the replica set the responsible peer wrote to,
	// including itself.
	Replicas int
	// Hops is the number of routing hops the mutation used to reach the
	// responsible partition.
	Hops int
}

// Insert routes a live write through the overlay to all replicas of the
// partition responsible for the key: the mutation travels the same
// α-concurrent routing path as an exact-match query, the responsible peer
// applies it and fans it out to its replica set, and the write succeeds once
// WriteQuorum replicas acknowledged it (ErrNoQuorum otherwise). Safe for
// concurrent use, including concurrently with searches.
func (c *Cluster) Insert(ctx context.Context, key Key, value string) (MutateReport, error) {
	if !c.built {
		return MutateReport{}, ErrNotBuilt
	}
	res, err := c.randomPeer().Insert(ctx, Item{Key: key, Value: value})
	return MutateReport{Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, err
}

// InsertString routes a live write for a string key; see Insert.
func (c *Cluster) InsertString(ctx context.Context, term, value string) (MutateReport, error) {
	return c.Insert(ctx, StringKey(term), value)
}

// Delete routes a live delete of the (key, value) pair to the responsible
// partition. Every replica that applies it records a tombstone, so
// anti-entropy maintenance spreads the delete instead of resurrecting the
// pair: a replica that acknowledged never serves it again, replicas that
// missed the delete converge via maintenance, and once tombstoned the pair
// cannot come back. For read-after-delete against any replica immediately,
// set WithWriteQuorum to the replica-set size; with smaller quorums a query
// racing ahead of maintenance can still see the pair on a replica the ack
// did not cover. Quorum semantics match Insert.
func (c *Cluster) Delete(ctx context.Context, key Key, value string) (MutateReport, error) {
	if !c.built {
		return MutateReport{}, ErrNotBuilt
	}
	res, err := c.randomPeer().Delete(ctx, key, value)
	return MutateReport{Acks: res.Acks, Replicas: res.Replicas, Hops: res.Hops}, err
}

// DeleteString routes a live delete for a string key; see Delete.
func (c *Cluster) DeleteString(ctx context.Context, term, value string) (MutateReport, error) {
	return c.Delete(ctx, StringKey(term), value)
}

// StartMaintenance launches the background maintenance loop on every peer:
// periodic anti-entropy with a random replica (spreading live writes and
// delete tombstones) and probing/pruning of stale routing references. The
// tick interval comes from WithMaintenanceInterval. Calling it again is a
// no-op while a loop is already running.
func (c *Cluster) StartMaintenance() {
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	if c.maintStops != nil {
		return
	}
	peers := c.peerList()
	c.maintStops = make([]func(), len(peers))
	for i, p := range peers {
		c.maintStops[i] = p.StartMaintenance(overlay.MaintenanceOptions{Interval: c.cfg.maintainEvery})
	}
}

// StopMaintenance stops the background maintenance loops and waits for them
// to exit. It is a no-op when maintenance is not running.
func (c *Cluster) StopMaintenance() {
	c.maintMu.Lock()
	stops := c.maintStops
	c.maintStops = nil
	c.maintMu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

// MaintenanceRound drives one synchronous maintenance tick on every peer
// (anti-entropy plus one routing probe each). It is what StartMaintenance
// does continuously in the background, exposed for deterministic tests and
// virtual-clock simulations.
func (c *Cluster) MaintenanceRound(ctx context.Context) {
	for _, p := range c.peerList() {
		p.MaintainTick(ctx, overlay.MaintenanceOptions{})
	}
}

// RestartPeer simulates a process crash and restart of the i-th peer: its
// background maintenance is stopped, its persistence flushed and closed,
// and a fresh peer is bound to the same network address. With
// WithPersistence the new peer recovers its items, tombstones, partition
// path and anti-entropy baselines from disk and rejoins via the exact-delta
// sync path; without it the peer comes back empty, like a fresh joiner.
// Queries and mutations may run concurrently with a restart; in-flight
// operations against the restarting peer can fail over to its replicas
// like any churn.
func (c *Cluster) RestartPeer(i int) error {
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	peers := c.peerList()
	i = ((i % len(peers)) + len(peers)) % len(peers)
	old := peers[i]
	// Take the address offline before touching the store: in-flight
	// protocol calls must fail like churn rather than be acknowledged into
	// a closing store (a false ack would advance the sender's sync
	// baseline past a write that is on neither disk nor the new peer).
	c.net.SetOnline(old.Addr(), false)
	if c.maintStops != nil {
		c.maintStops[i]()
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("pgrid: close peer %d: %w", i, err)
	}
	p, err := overlay.NewPersistent(c.peerConfig(i), c.net.Endpoint(old.Addr()))
	if err != nil {
		return fmt.Errorf("pgrid: reopen peer %d: %w", i, err)
	}
	c.net.SetOnline(old.Addr(), true)
	next := make([]*overlay.Peer, len(peers))
	copy(next, peers)
	next[i] = p
	c.peersMu.Lock()
	c.peers = next
	c.peersMu.Unlock()
	if c.maintStops != nil {
		c.maintStops[i] = p.StartMaintenance(overlay.MaintenanceOptions{Interval: c.cfg.maintainEvery})
	}
	return nil
}

// Close stops background maintenance and flushes and closes every peer's
// persistence. The cluster must not be used afterwards. It is a no-op
// beyond maintenance shutdown for in-memory clusters.
func (c *Cluster) Close() error {
	c.StopMaintenance()
	return c.closePeers()
}

// Search resolves an exact-match query for the key, starting from a random
// peer.
func (c *Cluster) Search(ctx context.Context, key Key) ([]SearchHit, error) {
	origin := c.randomPeer()
	res, err := origin.Query(ctx, key)
	if err != nil {
		return nil, err
	}
	hits := make([]SearchHit, 0, len(res.Items))
	for _, it := range res.Items {
		hits = append(hits, SearchHit{Key: it.Key, Value: it.Value, Hops: res.Hops})
	}
	return hits, nil
}

// SearchString resolves an exact-match query for a string key.
func (c *Cluster) SearchString(ctx context.Context, term string) ([]SearchHit, error) {
	return c.Search(ctx, StringKey(term))
}

// SearchMany resolves exact-match queries for many keys as one pipelined
// batch from a random origin peer: keys that route through the same next hop
// share a single message per hop instead of travelling as independent
// lookups. The result aligns with keys by index; keys that could not be
// resolved get a nil hit slice. An error is returned only when no key could
// be resolved at all.
func (c *Cluster) SearchMany(ctx context.Context, keys []Key) ([][]SearchHit, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	origin := c.randomPeer()
	results := origin.QueryBatch(ctx, keys)
	out := make([][]SearchHit, len(keys))
	resolved := 0
	for i, res := range results {
		if res.Err != nil {
			continue
		}
		resolved++
		hits := make([]SearchHit, 0, len(res.Items))
		for _, it := range res.Items {
			hits = append(hits, SearchHit{Key: it.Key, Value: it.Value, Hops: res.Hops})
		}
		out[i] = hits
	}
	if resolved == 0 {
		return out, errors.New("pgrid: no key of the batch could be resolved")
	}
	return out, nil
}

// SearchManyStrings resolves exact-match queries for many string keys as one
// pipelined batch; see SearchMany.
func (c *Cluster) SearchManyStrings(ctx context.Context, terms []string) ([][]SearchHit, error) {
	keys := make([]Key, len(terms))
	for i, t := range terms {
		keys[i] = StringKey(t)
	}
	return c.SearchMany(ctx, keys)
}

// SetQueryConcurrency adjusts the query engine's concurrency knobs on every
// peer at run time: alpha references raced per lookup hop, fanout concurrent
// range/batch sub-tree forwards, and the hedge delay staggering additional
// lookup candidates. Non-positive alpha or fanout and negative hedge keep
// the current value.
func (c *Cluster) SetQueryConcurrency(alpha, fanout int, hedge time.Duration) {
	for _, p := range c.peerList() {
		p.SetQueryConcurrency(alpha, fanout, hedge)
	}
}

// SearchRange returns every item whose key falls into [lo, hi), in key
// order.
func (c *Cluster) SearchRange(ctx context.Context, lo, hi Key) ([]SearchHit, error) {
	origin := c.randomPeer()
	res, err := origin.RangeQuery(ctx, keyspace.NewRange(lo, hi))
	if err != nil {
		return nil, err
	}
	hits := make([]SearchHit, 0, len(res.Items))
	for _, it := range res.Items {
		hits = append(hits, SearchHit{Key: it.Key, Value: it.Value, Hops: res.Hops})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Key.Compare(hits[j].Key) < 0 })
	return hits, nil
}

// SearchStringRange returns every item whose string key is >= loTerm and
// < hiTerm in lexicographic order (e.g. all terms with a given prefix when
// hiTerm is the prefix's upper bound).
func (c *Cluster) SearchStringRange(ctx context.Context, loTerm, hiTerm string) ([]SearchHit, error) {
	return c.SearchRange(ctx, StringKey(loTerm), StringKey(hiTerm))
}

// SetOnline switches a peer on- or offline, simulating churn.
func (c *Cluster) SetOnline(i int, online bool) {
	c.net.SetOnline(c.Peer(i).Addr(), online)
}

// OnlinePeers returns the number of peers currently online.
func (c *Cluster) OnlinePeers() int { return c.net.OnlineCount() }

// Experiment exposes the research-grade experiment harness used to
// reproduce the paper's evaluation; see the sim package for details.
type Experiment = sim.Experiment

// ExperimentConfig is the configuration of a reproduction experiment.
type ExperimentConfig = sim.Config

// ExperimentResult is the measured outcome of a reproduction experiment.
type ExperimentResult = sim.Result

// RunExperiment runs one complete construction experiment (replication,
// construction, optional churn, queries, measurement against the optimal
// partitioning of Algorithm 1).
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return sim.Run(cfg) }

// DefaultExperimentConfig returns the paper's main simulation parameters.
func DefaultExperimentConfig() ExperimentConfig { return sim.DefaultConfig() }
