package pgrid

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func buildTestCluster(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	base := []Option{WithPeers(32), WithSeed(7), WithMaxKeys(12), WithMinReplicas(2), WithMaxConstructionRounds(60)}
	c, err := NewCluster(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(WithPeers(1)); err == nil {
		t.Error("expected error for a single-peer cluster")
	}
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.Peers() != 32 {
		t.Errorf("default peers = %d", c.Peers())
	}
}

func TestKeyEncoders(t *testing.T) {
	if StringKey("abc").Compare(StringKey("abd")) >= 0 {
		t.Error("StringKey not order preserving")
	}
	if FloatKey(0.2).Compare(FloatKey(0.8)) >= 0 {
		t.Error("FloatKey not order preserving")
	}
	if Uint64Key(10).Compare(Uint64Key(1<<60)) >= 0 {
		t.Error("Uint64Key not order preserving")
	}
}

func TestClusterBuildAndSearch(t *testing.T) {
	c := buildTestCluster(t)
	ctx := context.Background()
	terms := []string{"database", "datalog", "overlay", "network", "index", "peer", "query", "trie", "range", "replica"}
	for i, term := range terms {
		for d := 0; d < 8; d++ {
			if err := c.IndexString(term, fmt.Sprintf("doc-%d-%d", i, d)); err != nil {
				t.Fatal(err)
			}
		}
	}
	report, err := c.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Built() {
		t.Error("cluster should report built")
	}
	if report.DistinctPartitions < 2 {
		t.Errorf("expected the key space to be partitioned: %+v", report)
	}
	if report.String() == "" {
		t.Error("report rendering empty")
	}
	// Every term must be findable.
	for i, term := range terms {
		hits, err := c.SearchString(ctx, term)
		if err != nil {
			t.Fatalf("search %q: %v", term, err)
		}
		if len(hits) == 0 {
			t.Errorf("no hits for %q", term)
			continue
		}
		found := false
		for _, h := range hits {
			if strings.HasPrefix(h.Value, fmt.Sprintf("doc-%d-", i)) {
				found = true
			}
		}
		if !found {
			t.Errorf("hits for %q do not contain its documents: %v", term, hits)
		}
	}
	// Build twice is rejected.
	if _, err := c.Build(ctx); err == nil {
		t.Error("second build should be rejected")
	}
}

func TestClusterSearchMany(t *testing.T) {
	c := buildTestCluster(t, WithSeed(13))
	ctx := context.Background()
	terms := []string{"database", "datalog", "overlay", "network", "index", "peer", "query", "trie"}
	for i, term := range terms {
		for d := 0; d < 6; d++ {
			if err := c.IndexString(term, fmt.Sprintf("doc-%d-%d", i, d)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	// Batch the terms plus one key that exists nowhere.
	lookups := append(append([]string(nil), terms...), "zzz-missing")
	hits, err := c.SearchManyStrings(ctx, lookups)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(lookups) {
		t.Fatalf("got %d result slices for %d keys", len(hits), len(lookups))
	}
	for i, term := range terms {
		if len(hits[i]) == 0 {
			t.Errorf("no hits for %q in batch", term)
			continue
		}
		found := false
		for _, h := range hits[i] {
			if strings.HasPrefix(h.Value, fmt.Sprintf("doc-%d-", i)) {
				found = true
			}
		}
		if !found {
			t.Errorf("batch hits for %q do not contain its documents: %v", term, hits[i])
		}
	}
	if len(hits[len(hits)-1]) != 0 {
		t.Errorf("missing term should produce no hits, got %v", hits[len(hits)-1])
	}
	if _, err := c.SearchMany(ctx, nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

func TestClusterRangeSearch(t *testing.T) {
	c := buildTestCluster(t, WithSeed(9))
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		if err := c.IndexFloat(x, fmt.Sprintf("v%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	hits, err := c.SearchRange(ctx, FloatKey(0.25), FloatKey(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 35 || len(hits) > 55 {
		t.Errorf("range hits = %d, want ≈50", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Key.Compare(hits[i].Key) > 0 {
			t.Error("range hits not sorted")
		}
	}
}

func TestClusterStringRangeSearch(t *testing.T) {
	c := buildTestCluster(t, WithSeed(11))
	ctx := context.Background()
	words := []string{"apple", "apricot", "banana", "blueberry", "cherry", "damson", "elderberry", "fig", "grape"}
	for _, w := range words {
		for d := 0; d < 5; d++ {
			_ = c.IndexString(w, fmt.Sprintf("%s-%d", w, d))
		}
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	hits, err := c.SearchStringRange(ctx, "b", "d")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		w := strings.SplitN(h.Value, "-", 2)[0]
		if w[0] != 'b' && w[0] != 'c' {
			t.Errorf("unexpected hit %q for range [b,d)", h.Value)
		}
	}
	if len(hits) < 10 {
		t.Errorf("expected the b/c words, got %d hits", len(hits))
	}
}

func TestIndexAfterBuild(t *testing.T) {
	c := buildTestCluster(t, WithSeed(13))
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		_ = c.IndexFloat(float64(i)/100, fmt.Sprintf("pre-%d", i))
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.IndexString("lateinsert", "doc-late"); err != nil {
		t.Fatal(err)
	}
	hits, err := c.SearchString(ctx, "lateinsert")
	if err != nil {
		t.Fatalf("search for late insert: %v", err)
	}
	found := false
	for _, h := range hits {
		if h.Value == "doc-late" {
			found = true
		}
	}
	if !found {
		t.Error("late-inserted item not found")
	}
}

func TestClusterChurnControls(t *testing.T) {
	c := buildTestCluster(t, WithSeed(15), WithMinReplicas(3), WithRoutingRedundancy(4))
	ctx := context.Background()
	for i := 0; i < 150; i++ {
		_ = c.IndexFloat(float64(i)/150, fmt.Sprintf("item-%d", i))
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	before := c.OnlinePeers()
	for i := 0; i < c.Peers()/4; i++ {
		c.SetOnline(i, false)
	}
	if c.OnlinePeers() >= before {
		t.Error("offline peers not reflected")
	}
	// Queries should still mostly succeed thanks to replication.
	success := 0
	for i := 0; i < 40; i++ {
		hits, err := c.Search(ctx, FloatKey(float64(i*3)/150))
		if err == nil && len(hits) > 0 {
			success++
		}
	}
	if success < 25 {
		t.Errorf("only %d/40 queries succeeded under churn", success)
	}
}

func TestClusterOptionCoverage(t *testing.T) {
	c, err := NewCluster(
		WithPeers(8),
		WithSeed(3),
		WithMaxKeys(20),
		WithMinReplicas(2),
		WithSampleSize(5),
		WithCorrectedProbabilities(),
		WithBootstrapDegree(3),
		WithMaxConstructionRounds(10),
		WithRoutingRedundancy(2),
		WithNetworkLatency(time.Microsecond),
		WithMessageLoss(0),
		WithQueryParallelism(2),
		WithHedgeDelay(time.Millisecond),
		WithRangeFanout(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Peer(0).Config().Samples != 5 || !c.Peer(0).Config().UseCorrection {
		t.Error("options not propagated to peers")
	}
	if cfg := c.Peer(0).Config(); cfg.Alpha != 2 || cfg.HedgeDelay != time.Millisecond || cfg.Fanout != 6 {
		t.Errorf("query concurrency options not propagated: %+v", cfg)
	}
	c.SetQueryConcurrency(4, 2, 0)
	if cfg := c.Peer(0).Config(); cfg.Alpha != 4 || cfg.Fanout != 2 || cfg.HedgeDelay != 0 {
		t.Errorf("SetQueryConcurrency not applied: %+v", cfg)
	}
	h, err := NewCluster(WithPeers(4), WithHeuristicProbabilities())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Peer(0).Config().UseHeuristic {
		t.Error("heuristic option not propagated")
	}
	if len(c.Paths()) != 8 {
		t.Error("Paths should list every peer")
	}
}

func TestClusterLiveMutations(t *testing.T) {
	c := buildTestCluster(t, WithWriteQuorum(2), WithMinReplicas(3), WithMaintenanceInterval(10*time.Millisecond))
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := c.IndexFloat(float64(i)/200, fmt.Sprintf("seed-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Mutations before Build are rejected.
	if _, err := c.Insert(ctx, FloatKey(0.5), "early"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("pre-build insert err = %v, want ErrNotBuilt", err)
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := c.InsertString(ctx, "freshterm", "doc-new")
	if err != nil && !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("insert: %v", err)
	}
	if rep.Acks < 1 {
		t.Errorf("insert acks = %d", rep.Acks)
	}
	hits, err := c.SearchString(ctx, "freshterm")
	if err != nil || len(hits) == 0 {
		t.Fatalf("read-your-write failed: %v %v", hits, err)
	}

	if _, err := c.DeleteString(ctx, "freshterm", "doc-new"); err != nil && !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("delete: %v", err)
	}
	if hits, err := c.SearchString(ctx, "freshterm"); err == nil && len(hits) != 0 {
		t.Errorf("deleted item still returned: %v", hits)
	}
	// Maintenance rounds must not resurrect the deleted pair.
	for i := 0; i < 3; i++ {
		c.MaintenanceRound(ctx)
	}
	if hits, err := c.SearchString(ctx, "freshterm"); err == nil && len(hits) != 0 {
		t.Errorf("maintenance resurrected deleted item: %v", hits)
	}
}

// TestClusterConcurrentMutationsAndQueries drives inserts, deletes and
// searches from many goroutines at once with background maintenance running;
// with -race this is the live system's synchronization test.
func TestClusterConcurrentMutationsAndQueries(t *testing.T) {
	c := buildTestCluster(t, WithMaintenanceInterval(5*time.Millisecond))
	ctx := context.Background()
	for i := 0; i < 150; i++ {
		if err := c.IndexFloat(float64(i)/150, fmt.Sprintf("seed-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Build(ctx); err != nil {
		t.Fatal(err)
	}
	c.StartMaintenance()
	defer c.StopMaintenance()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				key := FloatKey(float64((w*15+i)%150)/150 + 0.0003)
				val := fmt.Sprintf("live-%d-%d", w, i)
				if _, err := c.Insert(ctx, key, val); err != nil && !errors.Is(err, ErrNoQuorum) {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
				if _, err := c.Search(ctx, key); err != nil {
					errs <- fmt.Errorf("search: %w", err)
					return
				}
				if i%3 == 0 {
					if _, err := c.Delete(ctx, key, val); err != nil && !errors.Is(err, ErrNoQuorum) {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Peers = 48
	cfg.KeysPerPeer = 8
	cfg.Overlay.MaxKeys = 16
	cfg.Overlay.MinReplicas = 2
	cfg.Queries = 40
	cfg.MaxRounds = 50
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deviation <= 0 || res.QuerySuccessRate <= 0 {
		t.Errorf("experiment facade returned implausible result: %+v", res)
	}
}
