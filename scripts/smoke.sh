#!/usr/bin/env bash
# Smoke test for the deployable binaries: three pgridnode processes over the
# pooled TCP transport, fronted by one pgridgate HTTP gateway. Drives a
# put/get/range/batch workload over HTTP, scrapes /metrics on the gateway
# and on a node, then SIGTERMs the durable node and asserts a clean
# checkpointed shutdown and a snapshot-only recovery (empty WAL tail).
#
# Usage: scripts/smoke.sh   (from the repository root; needs go and curl)
set -euo pipefail

NODE1_PORT=17101 NODE2_PORT=17102 NODE3_PORT=17103
GATE_PORT=18180 NODE1_HTTP=18191
GATE_URL="http://127.0.0.1:${GATE_PORT}"
NODE1_URL="http://127.0.0.1:${NODE1_HTTP}"

WORK="$(mktemp -d)"
BIN="$WORK/bin"
LOG="$WORK/log"
mkdir -p "$BIN" "$LOG" "$WORK/n1"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "--- logs ---" >&2
  tail -n 40 "$LOG"/*.log >&2 || true
  exit 1
}

wait_http() { # url what
  for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$1" 2>/dev/null; then return 0; fi
    sleep 0.2
  done
  fail "$2 never became ready at $1"
}

echo "== building binaries"
go build -o "$BIN/pgridnode" ./cmd/pgridnode
go build -o "$BIN/pgridgate" ./cmd/pgridgate

echo "== starting 3 nodes + gateway"
"$BIN/pgridnode" -listen "127.0.0.1:$NODE1_PORT" -data-dir "$WORK/n1" \
  -put "database=doc-1" -put "overlay=doc-2" \
  -serve 300s -maintain 250ms -http "127.0.0.1:$NODE1_HTTP" \
  >"$LOG/node1.log" 2>&1 &
NODE1_PID=$!; PIDS+=("$NODE1_PID")
wait_http "$NODE1_URL/healthz" "node1 http"

"$BIN/pgridnode" -listen "127.0.0.1:$NODE2_PORT" -join "127.0.0.1:$NODE1_PORT" \
  -put "datalog=doc-3" -interactions 8 -serve 300s -maintain 250ms \
  >"$LOG/node2.log" 2>&1 &
PIDS+=("$!")
"$BIN/pgridnode" -listen "127.0.0.1:$NODE3_PORT" -join "127.0.0.1:$NODE1_PORT" \
  -put "indexing=doc-4" -interactions 8 -serve 300s -maintain 250ms \
  >"$LOG/node3.log" 2>&1 &
PIDS+=("$!")

"$BIN/pgridgate" -listen "127.0.0.1:$GATE_PORT" \
  -peer "127.0.0.1:$NODE1_PORT" -peer "127.0.0.1:$NODE2_PORT" -peer "127.0.0.1:$NODE3_PORT" \
  >"$LOG/gate.log" 2>&1 &
GATE_PID=$!; PIDS+=("$GATE_PID")
wait_http "$GATE_URL/readyz" "gateway"

echo "== HTTP workload: put / get / batch / range / delete"
for kv in "alpha=doc-a" "beta=doc-b" "gamma=doc-c"; do
  key="${kv%%=*}" val="${kv##*=}"
  out="$(curl -fsS -X PUT "$GATE_URL/v1/items/$key" -d "{\"value\":\"$val\"}")" \
    || fail "put $key"
  echo "$out" | grep -q '"acks":' || fail "put $key: unexpected body $out"
done

out="$(curl -fsS "$GATE_URL/v1/search/alpha")" || fail "search alpha"
echo "$out" | grep -q '"doc-a"' || fail "search alpha: unexpected body $out"

code="$(curl -s -o /dev/null -w '%{http_code}' "$GATE_URL/v1/search/never-inserted-key")"
[ "$code" = 404 ] || fail "absent key returned $code, want 404"

out="$(curl -fsS -X POST "$GATE_URL/v1/batch" -d '{"keys":["alpha","beta","never-inserted-key"]}')" \
  || fail "batch"
echo "$out" | grep -q '"found":true' || fail "batch: no hits in $out"
echo "$out" | grep -q '"found":false' || fail "batch: missing-key entry not reported in $out"

out="$(curl -fsS "$GATE_URL/v1/range?lo=alpha&hi=omega")" || fail "range"
echo "$out" | grep -q '"doc-a"' || fail "range: alpha missing from $out"
echo "$out" | grep -q '"doc-c"' || fail "range: gamma missing from $out"

curl -fsS -X DELETE "$GATE_URL/v1/items/beta?value=doc-b" >/dev/null || fail "delete beta"

echo "== scraping /metrics"
metrics="$(curl -fsS "$GATE_URL/metrics")" || fail "gateway metrics scrape"
echo "$metrics" | grep -E '^pgrid_gate_requests_total\{route="insert",code="200"\} [1-9]' >/dev/null \
  || fail "gateway insert counter not incremented"
echo "$metrics" | grep -E '^pgrid_gate_requests_total\{route="search",code="200"\} [1-9]' >/dev/null \
  || fail "gateway search counter not incremented"
echo "$metrics" | grep -q '^pgrid_gate_request_duration_seconds_bucket' \
  || fail "gateway latency histogram missing"

metrics="$(curl -fsS "$NODE1_URL/metrics")" || fail "node1 metrics scrape"
echo "$metrics" | grep -E '^pgrid_store_clock [1-9]' >/dev/null \
  || fail "node1 store clock is zero after local puts"
echo "$metrics" | grep -q '^pgrid_peer_queries_total' || fail "node1 peer counters missing"

echo "== graceful shutdown: gateway"
kill -TERM "$GATE_PID"
wait "$GATE_PID" || fail "gateway exited non-zero on SIGTERM"
grep -q "clean shutdown" "$LOG/gate.log" || fail "gateway did not log a clean shutdown"

echo "== graceful shutdown: durable node (SIGTERM -> checkpoint)"
kill -TERM "$NODE1_PID"
wait "$NODE1_PID" || fail "node1 exited non-zero on SIGTERM"
grep -q "clean shutdown" "$LOG/node1.log" || fail "node1 did not log a clean shutdown"

echo "== restart durable node: snapshot-only recovery, empty WAL tail"
"$BIN/pgridnode" -listen "127.0.0.1:$NODE1_PORT" -data-dir "$WORK/n1" \
  -serve 300s -http "127.0.0.1:$NODE1_HTTP" \
  >"$LOG/node1b.log" 2>&1 &
NODE1B_PID=$!; PIDS+=("$NODE1B_PID")
wait_http "$NODE1_URL/healthz" "restarted node1"
grep -q "recovered durable state" "$LOG/node1b.log" || fail "restart did not recover durable state"
metrics="$(curl -fsS "$NODE1_URL/metrics")" || fail "restarted node1 metrics scrape"
echo "$metrics" | grep -q '^pgrid_store_wal_records 0$' \
  || fail "WAL tail not empty after checkpointed shutdown: $(echo "$metrics" | grep '^pgrid_store_wal')"
echo "$metrics" | grep -E '^pgrid_store_items [1-9]' >/dev/null \
  || fail "restarted node recovered no items"

echo "SMOKE OK"
