#!/usr/bin/env bash
# Smoke test for the deployable binaries: three pgridnode processes over the
# pooled TCP transport, fronted by one pgridgate HTTP gateway, driven through
# a put/search/batch/range/delete workload with /metrics scrapes, a SIGTERM
# checkpointed shutdown, and a snapshot-only recovery (empty WAL tail).
#
# The boot/wait/workload/scrape logic lives in internal/harness — the same
# process harness the churn and crash suites use — so CI smoke and
# fault-injection testing share one startup path. This script is the thin
# CLI entry point.
#
# Usage: scripts/smoke.sh   (from the repository root; needs go)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1
exec go test ./internal/harness -run 'TestClusterSmoke' -v -count=1 -timeout 300s "$@"
