// Command benchdiff compares two `go test -bench` outputs (typically the PR
// head and the merge base) and fails when a gated benchmark regressed by
// more than the threshold. It is the CI benchmark-regression gate: benchstat
// renders the human-readable diff, benchdiff makes the pass/fail decision
// with no dependencies outside the standard library, so the gate also runs
// locally:
//
//	go test -run '^$' -bench . -benchmem -count=5 . > head.txt
//	git stash && go test -run '^$' -bench . -benchmem -count=5 . > base.txt && git stash pop
//	go run ./cmd/benchdiff -base base.txt -head head.txt
//
// Benchmarks are aggregated by name (the -cpu suffix is stripped) using the
// median ns/op across repetitions, which is robust against one noisy run.
// Only benchmarks matching -match gate the build; everything else is
// reported informationally. The comparison is written as JSON (for the CI
// artifact) and as a GitHub-flavored markdown table (for the step summary).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sampleSet collects the per-repetition measurements of one benchmark.
type sampleSet struct {
	nsPerOp     []float64
	bytesPerOp  []float64
	allocsPerOp []float64
}

// result is one benchmark's comparison, serialised into the JSON artifact.
type result struct {
	Name        string  `json:"name"`
	BaseNsOp    float64 `json:"base_ns_op"`
	HeadNsOp    float64 `json:"head_ns_op"`
	DeltaPct    float64 `json:"delta_pct"`
	BaseSamples int     `json:"base_samples"`
	HeadSamples int     `json:"head_samples"`
	Gated       bool    `json:"gated"`
	Regressed   bool    `json:"regressed"`
	Note        string  `json:"note,omitempty"`
}

// report is the top-level JSON artifact.
type report struct {
	ThresholdPct float64  `json:"threshold_pct"`
	GatePattern  string   `json:"gate_pattern"`
	Regressions  []string `json:"regressions"`
	Results      []result `json:"results"`
}

func main() {
	base := flag.String("base", "", "bench output of the comparison base (required)")
	head := flag.String("head", "", "bench output of the candidate (required)")
	threshold := flag.Float64("threshold", 15, "maximal tolerated ns/op regression in percent on gated benchmarks")
	match := flag.String("match", "Query|Search|Batch|Lookup|Insert|Delete|Mutation|AntiEntropy|Store|Wire|TCPCall|Engine|Cache|HotReplica",
		"regexp selecting the gated hot-path benchmarks")
	jsonOut := flag.String("json", "", "write the comparison as JSON to this file")
	mdOut := flag.String("markdown", "", "write the comparison as a markdown table to this file (- for stdout)")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -head are required")
		flag.Usage()
		os.Exit(2)
	}
	gate, err := regexp.Compile(*match)
	if err != nil {
		fatal("bad -match pattern: %v", err)
	}
	baseSamples, err := parseFile(*base)
	if err != nil {
		fatal("parse %s: %v", *base, err)
	}
	headSamples, err := parseFile(*head)
	if err != nil {
		fatal("parse %s: %v", *head, err)
	}

	rep := compare(baseSamples, headSamples, gate, *threshold)
	rep.GatePattern = *match

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonOut, err)
		}
	}
	md := markdown(rep)
	switch *mdOut {
	case "":
	case "-":
		fmt.Print(md)
	default:
		if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
			fatal("write %s: %v", *mdOut, err)
		}
	}

	for _, r := range rep.Results {
		mark := " "
		if r.Regressed {
			mark = "!"
		}
		fmt.Printf("%s %-44s %12.0f -> %10.0f ns/op  %+7.1f%%  %s\n",
			mark, r.Name, r.BaseNsOp, r.HeadNsOp, r.DeltaPct, r.Note)
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d hot-path benchmark(s) regressed more than %.0f%%: %s\n",
			len(rep.Regressions), rep.ThresholdPct, strings.Join(rep.Regressions, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no gated benchmark regressed more than %.0f%%\n", rep.ThresholdPct)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

// benchLine matches one benchmark result line of `go test -bench` output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseFile reads a bench output file into per-benchmark sample sets.
func parseFile(path string) (map[string]*sampleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string]*sampleSet, error) {
	out := make(map[string]*sampleSet)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripCPUSuffix(m[1])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		s := out[name]
		if s == nil {
			s = &sampleSet{}
			out[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, ns)
		if m[4] != "" {
			if b, err := strconv.ParseFloat(m[4], 64); err == nil {
				s.bytesPerOp = append(s.bytesPerOp, b)
			}
		}
		if m[5] != "" {
			if a, err := strconv.ParseFloat(m[5], 64); err == nil {
				s.allocsPerOp = append(s.allocsPerOp, a)
			}
		}
	}
	return out, sc.Err()
}

// stripCPUSuffix removes the -<GOMAXPROCS> suffix from a benchmark name.
func stripCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// median returns the median of the samples (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// compare builds the comparison report.
func compare(base, head map[string]*sampleSet, gate *regexp.Regexp, threshold float64) report {
	rep := report{ThresholdPct: threshold, Regressions: []string{}}
	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := head[name]
		r := result{Name: name, HeadNsOp: median(h.nsPerOp), HeadSamples: len(h.nsPerOp)}
		b, ok := base[name]
		if !ok {
			r.Note = "new benchmark (no base)"
			rep.Results = append(rep.Results, r)
			continue
		}
		r.BaseNsOp = median(b.nsPerOp)
		r.BaseSamples = len(b.nsPerOp)
		if r.BaseNsOp > 0 {
			r.DeltaPct = (r.HeadNsOp - r.BaseNsOp) / r.BaseNsOp * 100
		}
		r.Gated = gate.MatchString(name)
		if r.Gated && r.DeltaPct > threshold {
			r.Regressed = true
			rep.Regressions = append(rep.Regressions, name)
		}
		if r.BaseSamples < 3 || r.HeadSamples < 3 {
			r.Note = "few samples; noisy"
		}
		rep.Results = append(rep.Results, r)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			rep.Results = append(rep.Results, result{
				Name: name, BaseNsOp: median(base[name].nsPerOp),
				BaseSamples: len(base[name].nsPerOp), Note: "removed benchmark (no head)",
			})
		}
	}
	return rep
}

// markdown renders the report as a GitHub-flavored table.
func markdown(rep report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark comparison (gate: >%.0f%% on `%s`)\n\n", rep.ThresholdPct, rep.GatePattern)
	if len(rep.Regressions) == 0 {
		b.WriteString("No gated hot-path benchmark regressed.\n\n")
	} else {
		fmt.Fprintf(&b, "**%d regression(s): %s**\n\n", len(rep.Regressions), strings.Join(rep.Regressions, ", "))
	}
	b.WriteString("| benchmark | base ns/op | head ns/op | delta | gated | |\n")
	b.WriteString("|---|---:|---:|---:|:-:|---|\n")
	for _, r := range rep.Results {
		status := ""
		if r.Regressed {
			status = "❌ regressed"
		} else if r.Note != "" {
			status = r.Note
		}
		gated := ""
		if r.Gated {
			gated = "✓"
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %+.1f%% | %s | %s |\n",
			strings.TrimPrefix(r.Name, "Benchmark"), r.BaseNsOp, r.HeadNsOp, r.DeltaPct, gated, status)
	}
	return b.String()
}
