// Command pgridgate is the overlay's standalone HTTP front door: it speaks
// the P-Grid wire protocol to a set of entry peers over TCP and exposes the
// data operations as a JSON/HTTP API with Prometheus observability.
//
// Point it at one or more running pgridnode processes:
//
//	pgridgate -listen 127.0.0.1:8080 -peer 127.0.0.1:7001 -peer 127.0.0.1:7002
//
// and use the API:
//
//	curl -X PUT  localhost:8080/v1/items/database -d '{"value":"doc-1"}'
//	curl         localhost:8080/v1/search/database
//	curl         'localhost:8080/v1/range?lo=data&hi=overlay'
//	curl -X POST localhost:8080/v1/batch -d '{"keys":["database","overlay"]}'
//	curl -X DELETE 'localhost:8080/v1/items/database?value=doc-1'
//	curl         localhost:8080/metrics
//
// The gateway enforces a per-request deadline (-timeout) that propagates
// into overlay routing, sheds load beyond -max-inflight with 429 +
// Retry-After, and on SIGINT/SIGTERM drains gracefully: /readyz flips to
// 503 immediately, in-flight requests finish (bounded by -drain-timeout),
// then the listener closes and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pgrid/internal/gate"
	"pgrid/internal/network"
)

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var peers multiFlag
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP address to serve the API on")
		self         = flag.String("self", "127.0.0.1:0", "TCP address for the gateway's own overlay transport endpoint")
		timeout      = flag.Duration("timeout", gate.DefaultRequestTimeout, "per-request deadline, propagated into overlay routing")
		maxInflight  = flag.Int("max-inflight", gate.DefaultMaxInFlight, "maximum concurrently served API requests; excess load is shed with 429")
		quorum       = flag.Int("quorum", 1, "replica acks required before an insert/delete is reported successful")
		ttl          = flag.Int("ttl", gate.DefaultTTL, "routing-hop bound per overlay operation")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
		dialTimeout  = flag.Duration("dial-timeout", 0, "TCP transport: connection-establishment timeout (0 = default)")
		callTimeout  = flag.Duration("call-timeout", 0, "TCP transport: per-call timeout when the context has no deadline (0 = default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "TCP transport: idle horizon before a pooled connection is closed (0 = default)")
		forceJSON    = flag.Bool("force-json", false, "TCP transport: pin outgoing calls to the legacy JSON dial-per-call path")
	)
	flag.Var(&peers, "peer", "address of an overlay entry peer (repeatable)")
	flag.Parse()

	if err := run(gateOptions{
		listen: *listen, self: *self, peers: peers,
		timeout: *timeout, maxInflight: *maxInflight,
		quorum: *quorum, ttl: *ttl, drainTimeout: *drainTimeout,
		tcp: network.TCPOptions{
			DialTimeout: *dialTimeout,
			CallTimeout: *callTimeout,
			IdleTimeout: *idleTimeout,
			ForceJSON:   *forceJSON,
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pgridgate:", err)
		os.Exit(1)
	}
}

// gateOptions collects the run parameters parsed from the command line.
type gateOptions struct {
	listen, self string
	peers        []string
	timeout      time.Duration
	maxInflight  int
	quorum       int
	ttl          int
	drainTimeout time.Duration
	tcp          network.TCPOptions
}

func run(opts gateOptions) error {
	if len(opts.peers) == 0 {
		return fmt.Errorf("at least one -peer is required")
	}
	// The gateway's own wire endpoint: it originates overlay calls but
	// serves no protocol requests itself.
	ep, err := network.ListenTCPOptions(opts.self, opts.tcp)
	if err != nil {
		return fmt.Errorf("overlay transport: %w", err)
	}
	defer ep.Close()

	addrs := make([]network.Addr, len(opts.peers))
	for i, p := range opts.peers {
		addrs[i] = network.Addr(p)
	}
	backend := &gate.RemoteBackend{
		Transport:   ep,
		Peers:       addrs,
		TTL:         opts.ttl,
		WriteQuorum: opts.quorum,
	}
	srv := gate.New(gate.Config{
		Backend:        backend,
		RequestTimeout: opts.timeout,
		MaxInFlight:    opts.maxInflight,
	})

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return fmt.Errorf("http listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
		close(serveErr)
	}()
	fmt.Printf("pgridgate serving http://%s -> %d entry peer(s) via %s\n", ln.Addr(), len(addrs), ep.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case sig := <-sigCh:
		fmt.Printf("received %s, draining\n", sig)
	case err, ok := <-serveErr:
		if ok {
			return err
		}
		return nil
	}

	// Graceful drain: readiness flips first so load balancers stop routing
	// here, in-flight requests finish, then the listener closes.
	ctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pgridgate:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("clean shutdown: drained and stopped")
	return nil
}
