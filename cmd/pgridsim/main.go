// Command pgridsim runs a single construction experiment of the P-Grid
// overlay and reports its load-balancing and query-performance metrics.
//
// Example:
//
//	pgridsim -peers 256 -keys 10 -dist P1.0 -nmin 5 -dmax 50 -queries 200
package main

import (
	"flag"
	"fmt"
	"os"

	"pgrid/internal/overlay"
	"pgrid/internal/sim"
	"pgrid/internal/workload"
)

func main() {
	var (
		peers    = flag.Int("peers", 256, "number of peers")
		keys     = flag.Int("keys", 10, "data items per peer")
		dist     = flag.String("dist", "U", "key distribution: U, P0.5, P1.0, P1.5, N, A")
		nmin     = flag.Int("nmin", 5, "minimal replication factor n_min")
		dmax     = flag.Int("dmax", 0, "maximal storage load d_max (0 = 10*nmin)")
		samples  = flag.Int("samples", 0, "sample size for load estimation (0 = all local keys)")
		corr     = flag.Bool("corrected", false, "use bias-corrected decision probabilities")
		heur     = flag.Bool("heuristic", false, "use naive heuristic probabilities (ablation)")
		rounds   = flag.Int("rounds", 100, "maximum construction rounds")
		queries  = flag.Int("queries", 200, "number of exact-match queries to evaluate")
		offline  = flag.Float64("offline", 0, "fraction of peers taken offline before the query phase")
		seed     = flag.Int64("seed", 1, "random seed")
		refs     = flag.Int("refs", 3, "routing references per level")
		engine   = flag.String("engine", "", "pair-storage engine per peer: mem or disk (default: $PGRID_ENGINE, else mem)")
		showHelp = flag.Bool("help", false, "show usage")
	)
	flag.Parse()
	if *showHelp {
		flag.Usage()
		return
	}
	d, err := workload.ByName(*dist)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgridsim:", err)
		os.Exit(1)
	}
	maxKeys := *dmax
	if maxKeys <= 0 {
		maxKeys = 10 * *nmin
	}
	cfg := sim.Config{
		Peers:        *peers,
		KeysPerPeer:  *keys,
		Distribution: d,
		Overlay: overlay.Config{
			MaxKeys:       maxKeys,
			MinReplicas:   *nmin,
			Samples:       *samples,
			UseCorrection: *corr,
			UseHeuristic:  *heur,
			MaxRefs:       *refs,
			StorageEngine: *engine,
		},
		MaxRounds:       *rounds,
		Queries:         *queries,
		OfflineFraction: *offline,
		Seed:            *seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgridsim:", err)
		os.Exit(1)
	}
	fmt.Printf("peers=%d keys/peer=%d distribution=%s nmin=%d dmax=%d\n", *peers, *keys, d.Name(), *nmin, maxKeys)
	fmt.Println(res)
	fmt.Printf("rounds=%d converged=%.0f%% max-path=%d replication-cv=%.3f below-min=%.1f%%\n",
		res.Rounds, res.ConvergedFraction*100, res.MaxPathLength, res.Replication.CoefVariation, res.Replication.FractionBelowMin*100)
}
