// Command pgridvet runs the project's custom static-analysis suite
// (internal/lint): wireconsistency, lockrpc, atomicfield, ctxflow and
// senterr. It speaks two protocols:
//
//	go vet -vettool=$(command -v pgridvet) ./...   # unitchecker mode
//	pgridvet [-tests] [packages]                   # standalone mode
//
// In unitchecker mode cmd/go drives the tool over every compilation unit
// in the build graph and caches results by the tool's build ID; standalone
// mode loads packages itself via `go list -export` and is what CI and the
// analyzer fixtures use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pgrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes the tool before using it: -V=full for the build ID,
	// -flags for the flag schema. Handle both before normal flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			if err := lint.PrintVersion(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		case "-flags", "--flags":
			return printFlagSchema()
		}
	}

	all := lint.All()
	fs := flag.NewFlagSet("pgridvet", flag.ContinueOnError)
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+a.Doc)
	}
	tests := fs.Bool("tests", true, "standalone mode: include _test.go files and test packages")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// Like unitchecker: naming any analyzer flag narrows the run to the
	// named set; otherwise the whole suite runs.
	selected := all
	if anySet(enabled) {
		selected = nil
		for _, a := range all {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunVetTool(selected, rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.RunPatterns(wd, selected, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgridvet:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

func anySet(m map[string]*bool) bool {
	for _, v := range m {
		if *v {
			return true
		}
	}
	return false
}

// printFlagSchema implements `-flags`: the JSON flag inventory cmd/go uses
// to validate vet pass-through flags.
func printFlagSchema() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}
