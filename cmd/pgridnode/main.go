// Command pgridnode runs a single P-Grid peer on a real TCP transport, so a
// small overlay can be deployed across actual machines (the paper deployed
// the equivalent Java implementation on PlanetLab).
//
// Start a first node:
//
//	pgridnode -listen 127.0.0.1:7001 -put "database=doc-1" -put "overlay=doc-2"
//
// Start further nodes pointing at any existing one and let them construct
// the overlay, then query:
//
//	pgridnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 \
//	          -put "datalog=doc-3" -interactions 8 -get database
//
// The node keeps serving incoming protocol messages until the -serve
// duration elapses (0 means exit right after the local work is done, unless
// -http keeps the node up); -maintain additionally runs the background
// maintenance loop while serving. SIGINT or SIGTERM while serving triggers
// a clean shutdown: maintenance stops, the HTTP front door (if any) drains,
// durable state is checkpointed so the next start recovers from the
// snapshot with an empty WAL tail, and the process exits 0.
//
// With -http the node also serves the gateway HTTP API (see internal/gate):
// /v1 search/range/batch/insert/delete plus /healthz, /readyz and
// Prometheus-text /metrics with the peer's protocol counters and
// replication gauges.
//
// With -data-dir the node's replica state is durable: items, delete
// tombstones, the partition path and the anti-entropy sync baselines are
// captured by a write-ahead log plus snapshots, and a restarted node
// recovers them and rejoins its replica set through the cheap exact-delta
// sync path:
//
//	pgridnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 \
//	          -data-dir /var/lib/pgrid/node2 -serve 1h -maintain 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pgrid/internal/gate"
	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// nodeOptions collects the run parameters parsed from the command line.
type nodeOptions struct {
	listen, join string
	puts, gets   []string
	interactions int
	nmin, dmax   int
	serve        time.Duration
	dataDir      string
	engine       string
	maintain     time.Duration
	httpAddr     string
	tcp          network.TCPOptions
}

func main() {
	var puts, gets multiFlag
	var (
		listen       = flag.String("listen", "127.0.0.1:0", "address to listen on")
		join         = flag.String("join", "", "address of an existing node to interact with")
		interactions = flag.Int("interactions", 4, "construction interactions to initiate with the joined node")
		nmin         = flag.Int("nmin", 2, "minimal replication factor")
		dmax         = flag.Int("dmax", 20, "maximal storage load per partition")
		serve        = flag.Duration("serve", 0, "keep serving for this duration after local work finishes")
		dataDir      = flag.String("data-dir", "", "directory for durable replica state (WAL + snapshots); restarts recover items, tombstones, path and sync baselines from it")
		engine       = flag.String("engine", "", "pair-storage engine: mem or disk; disk keeps the partition's resident set bounded for stores far larger than RAM (default: $PGRID_ENGINE, else mem)")
		maintain     = flag.Duration("maintain", 0, "run background maintenance (anti-entropy, routing probes) at this interval while serving; 0 disables")
		httpAddr     = flag.String("http", "", "serve the gateway HTTP API (/v1/*, /healthz, /readyz, /metrics) on this address; keeps the node serving even with -serve 0")
		dialTimeout  = flag.Duration("dial-timeout", 0, "TCP transport: connection-establishment timeout (0 = default)")
		callTimeout  = flag.Duration("call-timeout", 0, "TCP transport: per-call timeout when the context has no deadline (0 = default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "TCP transport: per-connection idle horizon before a pooled connection is closed (0 = default)")
		frameLimit   = flag.Int("frame-limit", 0, "TCP transport: outgoing frame size cap in bytes; larger messages fragment (0 = protocol cap)")
		maxMessage   = flag.Int("max-message", 0, "TCP transport: reassembled message size cap in bytes (0 = default)")
		forceJSON    = flag.Bool("force-json", false, "TCP transport: pin outgoing calls to the legacy JSON dial-per-call path")
	)
	flag.Var(&puts, "put", "index an entry of the form term=value (repeatable)")
	flag.Var(&gets, "get", "query a term after construction (repeatable)")
	flag.Parse()

	opts := nodeOptions{
		listen: *listen, join: *join, puts: puts, gets: gets,
		interactions: *interactions, nmin: *nmin, dmax: *dmax,
		serve: *serve, dataDir: *dataDir, engine: *engine, maintain: *maintain,
		httpAddr: *httpAddr,
		tcp: network.TCPOptions{
			DialTimeout: *dialTimeout,
			CallTimeout: *callTimeout,
			IdleTimeout: *idleTimeout,
			FrameLimit:  *frameLimit,
			MaxMessage:  *maxMessage,
			ForceJSON:   *forceJSON,
		},
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "pgridnode:", err)
		os.Exit(1)
	}
}

func run(opts nodeOptions) error {
	listen, join, puts, gets := opts.listen, opts.join, opts.puts, opts.gets
	interactions, dataDir := opts.interactions, opts.dataDir
	serve := opts.serve
	ep, err := network.ListenTCPOptions(listen, opts.tcp)
	if err != nil {
		return err
	}
	defer ep.Close()
	cfg := overlay.Config{
		MaxKeys:       opts.dmax,
		MinReplicas:   opts.nmin,
		Seed:          time.Now().UnixNano(),
		DataDir:       dataDir,
		StorageEngine: opts.engine,
	}
	peer, err := overlay.NewPersistent(cfg, ep)
	if err != nil {
		return err
	}
	// The clean-shutdown path closes the peer explicitly (after a final
	// checkpoint); this cleanup only covers early error returns.
	peerClosed := false
	defer func() {
		if !peerClosed {
			peer.Close()
		}
	}()
	fmt.Printf("pgridnode listening on %s\n", ep.Addr())
	if dataDir != "" {
		fmt.Printf("recovered durable state from %s: path %q, %d items, %d known replicas\n",
			dataDir, peer.Path(), peer.Store().Len(), len(peer.Replicas()))
	}

	// Index the local entries.
	var items []replication.Item
	for _, kv := range puts {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("invalid -put %q, want term=value", kv)
		}
		items = append(items, replication.Item{
			Key:   keyspace.MustEncodeString(parts[0], keyspace.DefaultDepth),
			Value: parts[1],
		})
	}
	peer.AddItems(items)
	fmt.Printf("indexed %d local entries\n", len(items))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if join != "" {
		// Replicate the local entries to the bootstrap node and run a few
		// construction interactions against it.
		if err := peer.ReplicateItems(ctx, items, []network.Addr{network.Addr(join)}); err != nil {
			fmt.Printf("replication to %s failed: %v\n", join, err)
		}
		for i := 0; i < interactions; i++ {
			action, err := peer.Interact(ctx, network.Addr(join))
			if err != nil {
				fmt.Printf("interaction %d failed: %v\n", i+1, err)
				continue
			}
			fmt.Printf("interaction %d: %s (path now %s)\n", i+1, action, peer.Path())
		}
	}

	for _, term := range gets {
		key := keyspace.MustEncodeString(term, keyspace.DefaultDepth)
		res, err := peer.Query(ctx, key)
		switch {
		case errors.Is(err, overlay.ErrUnreachable):
			// "Overlay down" is a different failure than "key absent":
			// routing could not reach the responsible partition at all.
			fmt.Printf("get %q: overlay unreachable: %v\n", term, err)
		case err != nil:
			fmt.Printf("get %q: %v\n", term, err)
		case len(res.Items) == 0:
			fmt.Printf("get %q: not found (responsible partition reached in %d hop(s))\n", term, res.Hops)
		default:
			fmt.Printf("get %q: %d result(s) in %d hop(s)\n", term, len(res.Items), res.Hops)
			for _, it := range res.Items {
				fmt.Printf("  %s\n", it.Value)
			}
		}
	}

	if serve > 0 || opts.httpAddr != "" {
		if err := serveNode(peer, opts); err != nil {
			return err
		}
	}

	// Clean shutdown: checkpoint durable state so the next start recovers
	// from the snapshot with an empty WAL tail, then close the store.
	if dataDir != "" {
		if err := peer.Store().Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
	}
	peerClosed = true
	if err := peer.Close(); err != nil {
		return err
	}
	fmt.Println("clean shutdown: state checkpointed, store closed")
	return nil
}

// serveNode keeps the node serving protocol traffic — and, with -http, the
// gateway HTTP API — until the -serve duration elapses or a SIGINT/SIGTERM
// arrives. On signal it stops maintenance and drains the HTTP front door
// (readyz flips first, in-flight requests finish) before returning.
func serveNode(peer *overlay.Peer, opts nodeOptions) error {
	if opts.maintain > 0 {
		stop := peer.StartMaintenance(overlay.MaintenanceOptions{Interval: opts.maintain})
		defer stop()
	}

	var gateSrv *gate.Server
	var httpSrv *http.Server
	if opts.httpAddr != "" {
		ln, err := net.Listen("tcp", opts.httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		gateSrv = gate.New(gate.Config{Backend: gate.PeerBackend{Peer: peer}})
		httpSrv = &http.Server{Handler: gateSrv.Handler()}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "pgridnode: http serve:", err)
			}
		}()
		fmt.Printf("http API on http://%s (search/range/batch/items, /metrics, /healthz, /readyz)\n", ln.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var timer <-chan time.Time
	if opts.serve > 0 {
		timer = time.After(opts.serve)
		fmt.Printf("serving for %v (path %s, %d items)\n", opts.serve, peer.Path(), peer.Store().Len())
	} else {
		fmt.Printf("serving until signalled (path %s, %d items)\n", peer.Path(), peer.Store().Len())
	}
	select {
	case sig := <-sigCh:
		fmt.Printf("received %s, shutting down\n", sig)
	case <-timer:
	}

	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := gateSrv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "pgridnode:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "pgridnode: http shutdown:", err)
		}
	}
	return nil
}
