// Command pgridnode runs a single P-Grid peer on a real TCP transport, so a
// small overlay can be deployed across actual machines (the paper deployed
// the equivalent Java implementation on PlanetLab).
//
// Start a first node:
//
//	pgridnode -listen 127.0.0.1:7001 -put "database=doc-1" -put "overlay=doc-2"
//
// Start further nodes pointing at any existing one and let them construct
// the overlay, then query:
//
//	pgridnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 \
//	          -put "datalog=doc-3" -interactions 8 -get database
//
// The node keeps serving incoming protocol messages until the -serve
// duration elapses (0 means exit right after the local work is done);
// -maintain additionally runs the background maintenance loop while
// serving.
//
// With -data-dir the node's replica state is durable: items, delete
// tombstones, the partition path and the anti-entropy sync baselines are
// captured by a write-ahead log plus snapshots, and a restarted node
// recovers them and rejoins its replica set through the cheap exact-delta
// sync path:
//
//	pgridnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 \
//	          -data-dir /var/lib/pgrid/node2 -serve 1h -maintain 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
)

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// nodeOptions collects the run parameters parsed from the command line.
type nodeOptions struct {
	listen, join string
	puts, gets   []string
	interactions int
	nmin, dmax   int
	serve        time.Duration
	dataDir      string
	engine       string
	maintain     time.Duration
	tcp          network.TCPOptions
}

func main() {
	var puts, gets multiFlag
	var (
		listen       = flag.String("listen", "127.0.0.1:0", "address to listen on")
		join         = flag.String("join", "", "address of an existing node to interact with")
		interactions = flag.Int("interactions", 4, "construction interactions to initiate with the joined node")
		nmin         = flag.Int("nmin", 2, "minimal replication factor")
		dmax         = flag.Int("dmax", 20, "maximal storage load per partition")
		serve        = flag.Duration("serve", 0, "keep serving for this duration after local work finishes")
		dataDir      = flag.String("data-dir", "", "directory for durable replica state (WAL + snapshots); restarts recover items, tombstones, path and sync baselines from it")
		engine       = flag.String("engine", "", "pair-storage engine: mem or disk; disk keeps the partition's resident set bounded for stores far larger than RAM (default: $PGRID_ENGINE, else mem)")
		maintain     = flag.Duration("maintain", 0, "run background maintenance (anti-entropy, routing probes) at this interval while serving; 0 disables")
		dialTimeout  = flag.Duration("dial-timeout", 0, "TCP transport: connection-establishment timeout (0 = default)")
		callTimeout  = flag.Duration("call-timeout", 0, "TCP transport: per-call timeout when the context has no deadline (0 = default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "TCP transport: per-connection idle horizon before a pooled connection is closed (0 = default)")
		frameLimit   = flag.Int("frame-limit", 0, "TCP transport: outgoing frame size cap in bytes; larger messages fragment (0 = protocol cap)")
		maxMessage   = flag.Int("max-message", 0, "TCP transport: reassembled message size cap in bytes (0 = default)")
		forceJSON    = flag.Bool("force-json", false, "TCP transport: pin outgoing calls to the legacy JSON dial-per-call path")
	)
	flag.Var(&puts, "put", "index an entry of the form term=value (repeatable)")
	flag.Var(&gets, "get", "query a term after construction (repeatable)")
	flag.Parse()

	opts := nodeOptions{
		listen: *listen, join: *join, puts: puts, gets: gets,
		interactions: *interactions, nmin: *nmin, dmax: *dmax,
		serve: *serve, dataDir: *dataDir, engine: *engine, maintain: *maintain,
		tcp: network.TCPOptions{
			DialTimeout: *dialTimeout,
			CallTimeout: *callTimeout,
			IdleTimeout: *idleTimeout,
			FrameLimit:  *frameLimit,
			MaxMessage:  *maxMessage,
			ForceJSON:   *forceJSON,
		},
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "pgridnode:", err)
		os.Exit(1)
	}
}

func run(opts nodeOptions) error {
	listen, join, puts, gets := opts.listen, opts.join, opts.puts, opts.gets
	interactions, dataDir := opts.interactions, opts.dataDir
	serve, maintain := opts.serve, opts.maintain
	ep, err := network.ListenTCPOptions(listen, opts.tcp)
	if err != nil {
		return err
	}
	defer ep.Close()
	cfg := overlay.Config{
		MaxKeys:       opts.dmax,
		MinReplicas:   opts.nmin,
		Seed:          time.Now().UnixNano(),
		DataDir:       dataDir,
		StorageEngine: opts.engine,
	}
	peer, err := overlay.NewPersistent(cfg, ep)
	if err != nil {
		return err
	}
	defer peer.Close()
	fmt.Printf("pgridnode listening on %s\n", ep.Addr())
	if dataDir != "" {
		fmt.Printf("recovered durable state from %s: path %q, %d items, %d known replicas\n",
			dataDir, peer.Path(), peer.Store().Len(), len(peer.Replicas()))
	}

	// Index the local entries.
	var items []replication.Item
	for _, kv := range puts {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("invalid -put %q, want term=value", kv)
		}
		items = append(items, replication.Item{
			Key:   keyspace.MustEncodeString(parts[0], keyspace.DefaultDepth),
			Value: parts[1],
		})
	}
	peer.AddItems(items)
	fmt.Printf("indexed %d local entries\n", len(items))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if join != "" {
		// Replicate the local entries to the bootstrap node and run a few
		// construction interactions against it.
		if err := peer.ReplicateItems(ctx, items, []network.Addr{network.Addr(join)}); err != nil {
			fmt.Printf("replication to %s failed: %v\n", join, err)
		}
		for i := 0; i < interactions; i++ {
			action, err := peer.Interact(ctx, network.Addr(join))
			if err != nil {
				fmt.Printf("interaction %d failed: %v\n", i+1, err)
				continue
			}
			fmt.Printf("interaction %d: %s (path now %s)\n", i+1, action, peer.Path())
		}
	}

	for _, term := range gets {
		key := keyspace.MustEncodeString(term, keyspace.DefaultDepth)
		res, err := peer.Query(ctx, key)
		if err != nil {
			fmt.Printf("get %q: %v\n", term, err)
			continue
		}
		fmt.Printf("get %q: %d result(s) in %d hop(s)\n", term, len(res.Items), res.Hops)
		for _, it := range res.Items {
			fmt.Printf("  %s\n", it.Value)
		}
	}

	if serve > 0 {
		if maintain > 0 {
			stop := peer.StartMaintenance(overlay.MaintenanceOptions{Interval: maintain})
			defer stop()
		}
		fmt.Printf("serving for %v (path %s, %d items)\n", serve, peer.Path(), peer.Store().Len())
		time.Sleep(serve)
	}
	return nil
}
