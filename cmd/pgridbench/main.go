// Command pgridbench regenerates the tables and figures of "Indexing
// data-oriented overlay networks" (VLDB 2005) from this reproduction.
//
// Usage:
//
//	pgridbench -fig 3          # alpha''(p) (Figure 3)
//	pgridbench -fig 4          # partitioning deviation per model (Figure 4)
//	pgridbench -fig 5          # interactions per model (Figure 5)
//	pgridbench -fig 6a ... 6f  # construction-quality sweeps (Figure 6)
//	pgridbench -fig 7|8|9      # PlanetLab-style timeline figures
//	pgridbench -fig t1         # Section 5.2 in-text system metrics
//	pgridbench -fig t2         # eager vs autonomous analytic cost
//	pgridbench -fig q          # concurrent query engine: α / fan-out sweep
//	pgridbench -fig w          # live mutations: mixed read/write workload
//	pgridbench -fig dur        # durability: WAL append / checkpoint / recovery
//	pgridbench -fig net        # wire codec / transport: JSON+dial vs binary+pooled
//	pgridbench -fig zipf       # hot keys: answer cache + adaptive widening vs skew
//	pgridbench -fig all        # everything
//
// The -quick flag shrinks populations and repetition counts so a full run
// finishes in a couple of minutes on a laptop; drop it to use the paper's
// parameters (n up to 1024 peers, 100 repetitions for Figures 4/5).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pgrid"
	"pgrid/internal/churn"
	"pgrid/internal/core"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
	"pgrid/internal/sim"
	"pgrid/internal/stats"
	"pgrid/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6a,6b,6c,6d,6e,6f,7,8,9,t1,t2,q,w,ae,dur,net,zipf,all")
	quick := flag.Bool("quick", true, "use reduced sizes for fast runs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	targets := strings.Split(*fig, ",")
	if *fig == "all" {
		targets = []string{"3", "4", "5", "6a", "6b", "6c", "6d", "6e", "6f", "7", "8", "9", "t1", "t2", "q", "w", "ae", "dur", "net", "zipf"}
	}
	for _, t := range targets {
		if err := run(strings.TrimSpace(t), *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: figure %s: %v\n", t, err)
			os.Exit(1)
		}
	}
}

func run(fig string, quick bool, seed int64) error {
	switch fig {
	case "3":
		return figure3()
	case "4", "5":
		return figure45(fig, quick, seed)
	case "6a":
		return figure6a(quick, seed)
	case "6b":
		return figure6b(quick, seed)
	case "6c":
		return figure6c(quick, seed)
	case "6d":
		return figure6d(quick, seed)
	case "6e", "6f":
		return figure6ef(fig, quick, seed)
	case "7", "8", "9":
		return figure789(fig, quick, seed)
	case "t1":
		return table1(quick, seed)
	case "t2":
		return table2()
	case "q":
		return queryEngine(quick, seed)
	case "w":
		return liveWorkload(quick, seed)
	case "ae":
		return antiEntropy(quick, seed)
	case "dur":
		return durability(quick, seed)
	case "net":
		return netCodec(quick)
	case "zipf":
		return zipfHotKeys(quick, seed)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

// figure3 prints alpha”(p), the curvature of the balanced-split probability
// on the skewed branch (Figure 3).
func figure3() error {
	header("Figure 3: alpha''(p) over the skewed branch")
	fmt.Printf("%8s %12s %12s %14s\n", "p", "alpha(p)", "beta(p)", "alpha''(p)")
	for p := 0.05; p <= 0.305; p += 0.025 {
		a, err := core.AlphaOf(p)
		if err != nil {
			return err
		}
		b, _ := core.BetaOf(p)
		fmt.Printf("%8.3f %12.4f %12.4f %14.2f\n", p, a, b, core.AlphaSecondDerivative(p))
	}
	return nil
}

// figure45 prints the per-model deviation (Figure 4) or interaction count
// (Figure 5) over the load fractions of the paper.
func figure45(which string, quick bool, seed int64) error {
	cfg := core.DefaultExperimentConfig()
	cfg.Seed = seed
	if quick {
		cfg.N = 400
		cfg.Trials = 20
	}
	if which == "4" {
		header(fmt.Sprintf("Figure 4: deviation of |partition 0| from n*p (N=%d, s=%d, %d trials)", cfg.N, cfg.Samples, cfg.Trials))
	} else {
		header(fmt.Sprintf("Figure 5: total number of interactions (N=%d, s=%d, %d trials)", cfg.N, cfg.Samples, cfg.Trials))
	}
	points, err := core.Sweep(cfg, core.PaperFractions())
	if err != nil {
		return err
	}
	models := core.AllModels()
	fmt.Printf("%8s", "p")
	for _, m := range models {
		fmt.Printf(" %10s", m)
	}
	fmt.Println()
	for _, p := range core.PaperFractions() {
		fmt.Printf("%8.2f", p)
		for _, m := range models {
			for _, pt := range points {
				if pt.Model == m && math.Abs(pt.P-p) < 1e-9 {
					if which == "4" {
						fmt.Printf(" %10.2f", pt.MeanDeviation)
					} else {
						fmt.Printf(" %10.0f", pt.MeanInteractions)
					}
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func sweepConfig(quick bool, seed int64) sim.SweepConfig {
	sc := sim.DefaultSweepConfig()
	sc.Seed = seed
	if quick {
		sc.Repetitions = 2
		sc.Peers = 128
	} else {
		sc.Repetitions = 10
	}
	return sc
}

func figure6a(quick bool, seed int64) error {
	header("Figure 6(a): deviation per distribution and peer population")
	sc := sweepConfig(quick, seed)
	populations := []int{256, 512, 1024}
	if quick {
		populations = []int{64, 128, 256}
	}
	pts, err := sim.SweepPopulations(sc, populations)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatSweep(pts, "deviation"))
	return nil
}

func figure6b(quick bool, seed int64) error {
	header("Figure 6(b): deviation per required replication factor n_min")
	sc := sweepConfig(quick, seed)
	nmins := []int{5, 10, 15, 20, 25}
	if quick {
		nmins = []int{5, 10, 15}
	}
	pts, err := sim.SweepReplication(sc, nmins)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatSweep(pts, "deviation"))
	return nil
}

func figure6c(quick bool, seed int64) error {
	header("Figure 6(c): deviation per data sample size d_max")
	sc := sweepConfig(quick, seed)
	factors := []int{10, 20, 30}
	pts, err := sim.SweepSampleSize(sc, factors)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatSweep(pts, "deviation"))
	return nil
}

func figure6d(quick bool, seed int64) error {
	header("Figure 6(d): theoretical probabilities vs heuristics")
	sc := sweepConfig(quick, seed)
	nmins := []int{5, 10}
	if quick {
		nmins = []int{5}
	}
	pts, err := sim.SweepTheoryVsHeuristics(sc, nmins)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatSweep(pts, "deviation"))
	return nil
}

func figure6ef(which string, quick bool, seed int64) error {
	sc := sweepConfig(quick, seed)
	populations := []int{256, 512, 1024}
	if quick {
		populations = []int{64, 128, 256}
	}
	pts, err := sim.SweepPopulations(sc, populations)
	if err != nil {
		return err
	}
	if which == "6e" {
		header("Figure 6(e): construction interactions per peer")
		fmt.Print(sim.FormatSweep(pts, "interactions"))
	} else {
		header("Figure 6(f): data keys moved per peer (bandwidth)")
		fmt.Print(sim.FormatSweep(pts, "keysmoved"))
	}
	return nil
}

func figure789(which string, quick bool, seed int64) error {
	cfg := sim.DefaultTimelineConfig()
	cfg.Experiment.Seed = seed
	if quick {
		cfg.Experiment.Peers = 96
		cfg.JoinEnd = 30 * time.Minute
		cfg.ConstructEnd = 90 * time.Minute
		cfg.QueryEnd = 130 * time.Minute
		cfg.ChurnEnd = 160 * time.Minute
		cfg.Churn = churn.PaperModel()
	}
	res, err := sim.RunTimeline(cfg)
	if err != nil {
		return err
	}
	switch which {
	case "7":
		header("Figure 7: number of participating peers over time")
		fmt.Print(res.Peers.Table())
	case "8":
		header("Figure 8: aggregate bandwidth (maintenance vs queries), bytes/sec")
		fmt.Print(res.MaintenanceBandwidth.Table())
		fmt.Print(res.QueryBandwidth.Table())
	case "9":
		header("Figure 9: query latency (seconds)")
		fmt.Print(res.QueryLatency.Table())
	}
	fmt.Println(res.Summary())
	return nil
}

// table1 prints the in-text system metrics of Section 5.2.
func table1(quick bool, seed int64) error {
	header("Section 5.2 system metrics (simulation vs PlanetLab report)")
	cfg := sim.DefaultConfig()
	cfg.Peers = 296
	cfg.Distribution = workload.NewTextCorpus(workload.DefaultCorpusConfig())
	cfg.Seed = seed
	cfg.Queries = 400
	if quick {
		cfg.Peers = 128
		cfg.Queries = 200
	}
	var devs []float64
	reps := 3
	if quick {
		reps = 2
	}
	var last *sim.Result
	for i := 0; i < reps; i++ {
		cfg.Seed = seed + int64(i)
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		devs = append(devs, res.Deviation)
		last = res
	}
	fmt.Printf("%-36s %12s %12s\n", "metric", "paper", "measured")
	fmt.Printf("%-36s %12s %12.2f ± %.2f\n", "load-balancing deviation", "0.38-0.39", stats.Mean(devs), stats.Std(devs))
	fmt.Printf("%-36s %12s %12.2f\n", "mean path length", "≈6", last.MeanPathLength)
	fmt.Printf("%-36s %12s %12.2f\n", "mean query hops", "≈3", last.MeanQueryHops)
	fmt.Printf("%-36s %12s %12.2f\n", "replicas per partition", "≈5", last.MeanReplicasPerPartition)
	fmt.Printf("%-36s %12s %12.0f%%\n", "query success rate", "95-100%", last.QuerySuccessRate*100)
	return nil
}

// queryEngine measures the concurrent query engine: exact-match lookup
// latency for α ∈ {1,2,3,5} with a fifth of the peers offline (stale
// routing references), shower-query latency for serial versus concurrent
// sub-tree fan-out, and 32-key batches versus independent lookups. α=1 and
// fanout=1 are the sequential baselines of the original engine.
func queryEngine(quick bool, seed int64) error {
	header("Query engine: hedged α-parallel lookups and concurrent shower fan-out")
	ctx := context.Background()
	peers, queries := 128, 300
	if quick {
		peers, queries = 64, 120
	}
	latency := 500 * time.Microsecond
	build := func(offline bool) (*pgrid.Cluster, []pgrid.Key, error) {
		c, err := pgrid.NewCluster(
			pgrid.WithPeers(peers),
			pgrid.WithMaxKeys(20),
			pgrid.WithMinReplicas(2),
			pgrid.WithRoutingRedundancy(4),
			pgrid.WithSeed(seed),
			pgrid.WithNetworkLatency(latency),
		)
		if err != nil {
			return nil, nil, err
		}
		n := 6 * peers
		keys := make([]pgrid.Key, n)
		for j := range keys {
			keys[j] = pgrid.FloatKey(float64(j) / float64(n))
			if err := c.Index(keys[j], fmt.Sprintf("v%d", j)); err != nil {
				return nil, nil, err
			}
		}
		if _, err := c.Build(ctx); err != nil {
			return nil, nil, err
		}
		if offline {
			for i := 0; i < peers; i += 5 {
				c.SetOnline(i, false)
			}
		}
		return c, keys, nil
	}

	// The engine prunes stale references as it hits them; restore them
	// before every query so each sample measures the same 20%-stale regime.
	snapshotRefs := func(c *pgrid.Cluster) [][][]routing.Ref {
		out := make([][][]routing.Ref, c.Peers())
		for i := range out {
			_, levels := c.Peer(i).Table().Snapshot()
			out[i] = levels
		}
		return out
	}
	restoreRefs := func(c *pgrid.Cluster, snaps [][][]routing.Ref) {
		for i := range snaps {
			t := c.Peer(i).Table()
			for level, refs := range snaps[i] {
				for _, ref := range refs {
					t.Add(level, ref)
				}
			}
		}
	}

	fmt.Printf("%d peers, %v one-way latency, 20%% offline during lookups\n", peers, latency)
	fmt.Println("(the concurrent engine is the repo-wide default; alpha=1/fanout=1 is the sequential baseline)")
	fmt.Println()
	fmt.Printf("%-24s %10s %10s %10s %10s\n", "exact-match lookup", "p50 (ms)", "p95 (ms)", "mean (ms)", "success")
	for _, alpha := range []int{1, 2, 3, 5} {
		c, keys, err := build(true)
		if err != nil {
			return err
		}
		snaps := snapshotRefs(c)
		c.SetQueryConcurrency(alpha, 0, -1)
		origin := c.Peer(1)
		var lat []float64
		ok := 0
		for i := 0; i < queries; i++ {
			restoreRefs(c, snaps)
			start := time.Now()
			_, err := origin.Query(ctx, keys[(i*37)%len(keys)])
			lat = append(lat, float64(time.Since(start).Microseconds())/1000)
			if err == nil {
				ok++
			}
		}
		s := stats.Summarize(lat)
		fmt.Printf("%-24s %10.2f %10.2f %10.2f %9.0f%%\n",
			fmt.Sprintf("alpha=%d", alpha), s.Median, s.P95, s.Mean, 100*float64(ok)/float64(queries))
	}

	fmt.Printf("\n%-24s %10s %10s %10s\n", "shower range [.05,.95)", "p50 (ms)", "p95 (ms)", "mean (ms)")
	rangeReps := queries / 10
	for _, fanout := range []int{1, 4, 8} {
		c, _, err := build(false)
		if err != nil {
			return err
		}
		c.SetQueryConcurrency(0, fanout, -1)
		lo, hi := pgrid.FloatKey(0.05), pgrid.FloatKey(0.95)
		var lat []float64
		for i := 0; i < rangeReps; i++ {
			start := time.Now()
			if _, err := c.SearchRange(ctx, lo, hi); err != nil {
				return err
			}
			lat = append(lat, float64(time.Since(start).Microseconds())/1000)
		}
		s := stats.Summarize(lat)
		fmt.Printf("%-24s %10.2f %10.2f %10.2f\n", fmt.Sprintf("fanout=%d", fanout), s.Median, s.P95, s.Mean)
	}

	fmt.Printf("\n%-24s %10s\n", "32-key batch", "mean (ms)")
	for _, mode := range []string{"single lookups", "QueryBatch"} {
		c, keys, err := build(false)
		if err != nil {
			return err
		}
		origin := c.Peer(1)
		reps := queries / 10
		start := time.Now()
		for i := 0; i < reps; i++ {
			batch := make([]pgrid.Key, 32)
			for j := range batch {
				batch[j] = keys[(i*32+j*13)%len(keys)]
			}
			if mode == "QueryBatch" {
				origin.QueryBatch(ctx, batch)
			} else {
				for _, k := range batch {
					_, _ = origin.Query(ctx, k)
				}
			}
		}
		fmt.Printf("%-24s %10.2f\n", mode, float64(time.Since(start).Microseconds())/1000/float64(reps))
	}
	return nil
}

// liveWorkload measures the live mutation subsystem: insert and delete
// latency under a mixed read/write workload (70/20/10) against a constructed
// overlay with background maintenance running, and the read-your-writes
// convergence time — how long after a quorum-acked insert every online
// responsible peer serves the item, with a fifth of the peers churning
// through the write phase.
func liveWorkload(quick bool, seed int64) error {
	header("Live mutations: routed writes, quorum-ack, maintenance convergence")
	ctx := context.Background()
	peers, ops := 96, 600
	if quick {
		peers, ops = 48, 240
	}
	latency := 500 * time.Microsecond
	c, err := pgrid.NewCluster(
		pgrid.WithPeers(peers),
		pgrid.WithMaxKeys(20),
		pgrid.WithMinReplicas(3),
		pgrid.WithWriteQuorum(2),
		pgrid.WithRoutingRedundancy(4),
		pgrid.WithSeed(seed),
		pgrid.WithNetworkLatency(latency),
		pgrid.WithMaintenanceInterval(5*time.Millisecond),
	)
	if err != nil {
		return err
	}
	n := 6 * peers
	keys := make([]pgrid.Key, n)
	for j := range keys {
		keys[j] = pgrid.FloatKey(float64(j) / float64(n))
		if err := c.Index(keys[j], fmt.Sprintf("v%d", j)); err != nil {
			return err
		}
	}
	if _, err := c.Build(ctx); err != nil {
		return err
	}
	c.StartMaintenance()
	defer c.StopMaintenance()

	fmt.Printf("%d peers, %v one-way latency, write quorum 2, maintenance every 5ms\n\n", peers, latency)

	// Mixed workload: 70% reads, 20% inserts, 10% deletes of earlier
	// inserts.
	var insertLat, deleteLat []float64
	type live struct {
		key pgrid.Key
		val string
	}
	var lives []live
	reads, readHits, quorumMisses := 0, 0, 0
	for i := 0; i < ops; i++ {
		switch {
		case i%10 < 7:
			reads++
			if hits, err := c.Search(ctx, keys[(i*37)%len(keys)]); err == nil && len(hits) > 0 {
				readHits++
			}
		case i%10 < 9:
			w := live{key: pgrid.FloatKey(float64(i%n)/float64(n) + 0.31/float64(2*n)), val: fmt.Sprintf("live-%d", i)}
			start := time.Now()
			_, err := c.Insert(ctx, w.key, w.val)
			insertLat = append(insertLat, float64(time.Since(start).Microseconds())/1000)
			if errors.Is(err, pgrid.ErrNoQuorum) {
				quorumMisses++
			} else if err != nil {
				return err
			}
			lives = append(lives, w)
		default:
			if len(lives) == 0 {
				continue
			}
			w := lives[len(lives)-1]
			lives = lives[:len(lives)-1]
			start := time.Now()
			if _, err := c.Delete(ctx, w.key, w.val); err != nil && !errors.Is(err, pgrid.ErrNoQuorum) {
				return err
			}
			deleteLat = append(deleteLat, float64(time.Since(start).Microseconds())/1000)
		}
	}
	fmt.Printf("%-24s %10s %10s %10s\n", "mixed workload op", "p50 (ms)", "p95 (ms)", "mean (ms)")
	for _, row := range []struct {
		name string
		lat  []float64
	}{{"insert (quorum=2)", insertLat}, {"delete (quorum=2)", deleteLat}} {
		if len(row.lat) == 0 {
			continue
		}
		s := stats.Summarize(row.lat)
		fmt.Printf("%-24s %10.2f %10.2f %10.2f\n", row.name, s.Median, s.P95, s.Mean)
	}
	fmt.Printf("%-24s %9.0f%%   (%d quorum misses of %d inserts)\n", "read success",
		100*float64(readHits)/float64(reads), quorumMisses, len(insertLat))

	// Read-your-writes convergence under churn: a fifth of the peers is
	// offline while fresh items are inserted; once they return, background
	// maintenance must deliver each item to every responsible peer.
	for i := 0; i < peers; i += 5 {
		c.SetOnline(i, false)
	}
	m := 20
	type pending struct {
		key   pgrid.Key
		val   string
		since time.Time
	}
	var writes []pending
	unroutable := 0
	for i := 0; i < m; i++ {
		key := pgrid.FloatKey((float64(i) + 0.137) / float64(m))
		val := fmt.Sprintf("conv-%d", i)
		if _, err := c.Insert(ctx, key, val); err != nil && !errors.Is(err, pgrid.ErrNoQuorum) {
			// With a fifth of the peers offline a partition can lose all its
			// replicas; such writes cannot route and are not measured.
			unroutable++
			continue
		}
		writes = append(writes, pending{key: key, val: val, since: time.Now()})
	}
	for i := 0; i < peers; i += 5 {
		c.SetOnline(i, true)
	}
	var convLat []float64
	deadline := time.Now().Add(30 * time.Second)
	for len(writes) > 0 && time.Now().Before(deadline) {
		remaining := writes[:0]
		for _, w := range writes {
			converged := true
			for i := 0; i < c.Peers(); i++ {
				p := c.Peer(i)
				if !p.Table().Responsible(w.key) {
					continue
				}
				found := false
				for _, it := range p.Store().Lookup(w.key) {
					if it.Value == w.val {
						found = true
						break
					}
				}
				if !found {
					converged = false
					break
				}
			}
			if converged {
				convLat = append(convLat, float64(time.Since(w.since).Microseconds())/1000)
			} else {
				remaining = append(remaining, w)
			}
		}
		writes = append([]pending(nil), remaining...)
		time.Sleep(2 * time.Millisecond)
	}
	if len(convLat) > 0 {
		s := stats.Summarize(convLat)
		fmt.Printf("\n%-24s %10.2f %10.2f %10.2f   (%d/%d converged, 20%% peers churned, %d unroutable)\n",
			"convergence time (ms)", s.Median, s.P95, s.Mean, len(convLat), m, unroutable)
	}
	if len(writes) > 0 {
		fmt.Printf("%-24s %d writes had not reached every responsible peer at the deadline\n", "", len(writes))
	}
	return nil
}

// antiEntropy measures maintenance bandwidth as a function of lifetime
// deletes: the legacy full-set exchange retransmits the partition's entire
// item and tombstone set every tick, so its bytes-per-tick grow linearly
// with the deletes the overlay has ever seen, while the digest/delta
// protocol (the default) pays a constant digest round in steady state and
// the tombstone GC bounds the metadata itself. This is the figure behind
// the tombstone-GC item in ROADMAP.md.
func antiEntropy(quick bool, seed int64) error {
	header("Anti-entropy: maintenance bytes/tick vs lifetime deletes")
	ctx := context.Background()
	peers, items := 48, 240
	epochDeletes := []int{30, 300, 3000}
	if quick {
		peers, items = 32, 120
		epochDeletes = []int{20, 200, 2000}
	}
	measureTicks := 8

	build := func(opts ...pgrid.Option) (*pgrid.Cluster, error) {
		base := []pgrid.Option{
			pgrid.WithPeers(peers),
			pgrid.WithMaxKeys(20),
			pgrid.WithMinReplicas(2),
			pgrid.WithRoutingRedundancy(4),
			pgrid.WithSeed(seed),
		}
		c, err := pgrid.NewCluster(append(base, opts...)...)
		if err != nil {
			return nil, err
		}
		for j := 0; j < items; j++ {
			if err := c.Index(pgrid.FloatKey(float64(j)/float64(items)), fmt.Sprintf("v%d", j)); err != nil {
				return nil, err
			}
		}
		if _, err := c.Build(ctx); err != nil {
			return nil, err
		}
		return c, nil
	}

	full, err := build(pgrid.WithFullSyncAntiEntropy())
	if err != nil {
		return err
	}
	digest, err := build(pgrid.WithTombstoneGC(0, 64))
	if err != nil {
		return err
	}

	maintBytes := func(c *pgrid.Cluster) float64 {
		var total float64
		for i := 0; i < c.Peers(); i++ {
			total += c.Peer(i).Metrics.MaintenanceBytes.Value()
		}
		return total
	}
	tombstones := func(c *pgrid.Cluster) int {
		n := 0
		for i := 0; i < c.Peers(); i++ {
			n += c.Peer(i).Store().TombstoneCount()
		}
		return n
	}
	// churn writes: insert a fresh pair, then delete it, so every round
	// trip leaves one more lifetime delete behind.
	writeDelete := func(c *pgrid.Cluster, i int) {
		key := pgrid.FloatKey((float64(i%items) + 0.37) / float64(items))
		val := fmt.Sprintf("churn-%d", i)
		_, _ = c.Insert(ctx, key, val)
		_, _ = c.Delete(ctx, key, val)
	}
	bytesPerTick := func(c *pgrid.Cluster) float64 {
		// Let replicas converge first so the measurement sees the steady
		// state, then average the cost of the next ticks.
		for i := 0; i < 4; i++ {
			c.MaintenanceRound(ctx)
		}
		start := maintBytes(c)
		for i := 0; i < measureTicks; i++ {
			c.MaintenanceRound(ctx)
		}
		return (maintBytes(c) - start) / float64(measureTicks)
	}

	fmt.Printf("%d peers, %d base items, %d maintenance ticks per measurement\n", peers, items, measureTicks)
	fmt.Println("full-set = legacy exchange (tombstones kept forever); digest = delta protocol + GC horizon of 64 versions")
	fmt.Println()
	fmt.Printf("%16s %18s %18s %16s %16s\n", "lifetime deletes", "full-set B/tick", "digest B/tick", "full tombstones", "gc tombstones")
	done := 0
	for _, target := range epochDeletes {
		for ; done < target; done++ {
			writeDelete(full, done)
			writeDelete(digest, done)
			if done%50 == 49 {
				// Background maintenance keeps running while the write
				// workload churns, as it would in production.
				full.MaintenanceRound(ctx)
				digest.MaintenanceRound(ctx)
			}
		}
		fb := bytesPerTick(full)
		db := bytesPerTick(digest)
		fmt.Printf("%16d %18.0f %18.0f %16d %16d\n", done, fb, db, tombstones(full), tombstones(digest))
	}
	var insync, delta, fullSyncs float64
	for i := 0; i < digest.Peers(); i++ {
		m := &digest.Peer(i).Metrics
		insync += m.SyncsInSync.Value()
		delta += m.SyncsDelta.Value()
		fullSyncs += m.SyncsFull.Value()
	}
	fmt.Printf("\ndigest cluster sync rounds: %.0f in-sync, %.0f delta, %.0f full\n", insync, delta, fullSyncs)
	return nil
}

// table2 prints the analytic interaction costs the paper derives in
// Section 3: ln2 per peer for eager partitioning versus 2*ln2 for
// autonomous partitioning at p = 1/2, plus the growth of t*(p) with skew.
func table2() error {
	header("Section 3 analytic interaction costs")
	fmt.Printf("eager / AEP interactions per peer at p=0.5:      %.4f (ln 2)\n", math.Ln2)
	fmt.Printf("autonomous partitioning interactions per peer:   %.4f (2 ln 2)\n", 2*math.Ln2)
	fmt.Printf("\n%8s %16s\n", "p", "t*(p) per peer")
	for _, p := range core.PaperFractions() {
		t, err := core.TerminationTime(p)
		if err != nil {
			return err
		}
		fmt.Printf("%8.2f %16.4f\n", p, t)
	}
	return nil
}

// durability prints the costs of the persistence subsystem: WAL append
// latency on the write path, checkpoint (snapshot + WAL truncation) cost,
// and crash-recovery time as the store grows — plus a cluster restart
// demonstrating that recovered peers rejoin through the in-sync/delta
// anti-entropy paths.
func durability(quick bool, seed int64) error {
	header("Durability: WAL append / checkpoint / recovery (beyond the paper)")
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	fmt.Printf("%10s %18s %16s %16s\n", "pairs", "WAL append µs/op", "checkpoint ms", "recovery ms")
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "pgridbench-dur-*")
		if err != nil {
			return err
		}
		s, err := replication.OpenStore(dir, replication.PersistOptions{})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			s.Insert(replication.Item{
				Key:   pgrid.FloatKey(float64(i%65536) / 65536),
				Value: fmt.Sprintf("v%d", i),
			})
		}
		appendUS := float64(time.Since(start).Microseconds()) / float64(n)
		start = time.Now()
		if err := s.Checkpoint(); err != nil {
			return err
		}
		checkpointMS := float64(time.Since(start).Microseconds()) / 1000
		// Half the pairs mutate again so recovery replays a WAL tail on
		// top of the snapshot, like a real crash between checkpoints.
		for i := 0; i < n/2; i++ {
			s.Insert(replication.Item{
				Key:   pgrid.FloatKey(float64(i%65536) / 65536),
				Value: fmt.Sprintf("v%d", i),
			})
		}
		if err := s.Close(); err != nil {
			return err
		}
		start = time.Now()
		r, err := replication.OpenStore(dir, replication.PersistOptions{})
		if err != nil {
			return err
		}
		recoveryMS := float64(time.Since(start).Microseconds()) / 1000
		if r.Len() != s.Len() {
			return fmt.Errorf("recovery diverged: %d pairs, want %d", r.Len(), s.Len())
		}
		if err := r.Close(); err != nil {
			return err
		}
		os.RemoveAll(dir)
		fmt.Printf("%10d %18.2f %16.2f %16.2f\n", n, appendUS, checkpointMS, recoveryMS)
	}

	// Cluster restart: a quarter of the peers crash and recover; their
	// post-restart anti-entropy must run through the cheap paths.
	dir, err := os.MkdirTemp("", "pgridbench-dur-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(16), pgrid.WithSeed(seed),
		pgrid.WithPersistence(dir), pgrid.WithMinReplicas(2), pgrid.WithMaxKeys(10),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if err := cluster.IndexFloat(float64(i)/64, fmt.Sprintf("doc-%d", i)); err != nil {
			return err
		}
	}
	if _, err := cluster.Build(ctx); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}
	start := time.Now()
	for _, i := range []int{1, 5, 9, 13} {
		if err := cluster.RestartPeer(i); err != nil {
			return err
		}
	}
	restartMS := float64(time.Since(start).Microseconds()) / 1000
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}
	var insync, delta, full float64
	for _, i := range []int{1, 5, 9, 13} {
		m := &cluster.Peer(i).Metrics
		insync += m.SyncsInSync.Value()
		delta += m.SyncsDelta.Value()
		full += m.SyncsFull.Value()
	}
	fmt.Printf("\ncluster restart (4/16 peers): %.1f ms; post-restart syncs: %.0f in-sync, %.0f delta, %.0f full\n",
		restartMS, insync, delta, full)
	return nil
}

// netCodec prints the wire-codec and transport comparison (beyond the
// paper): per-message bytes and encode/decode cost for the legacy JSON
// envelope versus the compact binary codec, then loopback TCP round-trip
// latency for dial-per-call JSON versus the pooled persistent-connection
// binary transport. These are the constant factors multiplying the paper's
// O(log n) messages per query.
func netCodec(quick bool) error {
	header("Wire codec and transport: JSON+dial-per-call vs binary+pooled (beyond the paper)")

	items := func(n int) []replication.Item {
		out := make([]replication.Item, n)
		for i := range out {
			out[i] = replication.Item{
				Key:   pgrid.FloatKey(float64(i) / float64(n)),
				Value: fmt.Sprintf("document-%04d", i),
				Gen:   uint64(i % 3),
			}
		}
		return out
	}
	messages := []struct {
		name string
		msg  any
	}{
		{"QueryRequest", overlay.QueryRequest{Key: pgrid.FloatKey(0.42), TTL: 16}},
		{"QueryResponse/16", overlay.QueryResponse{Found: true, Items: items(16), Hops: 3, Responsible: "127.0.0.1:40404", ResponsiblePath: "101101"}},
		{"DeltaResponse/256", overlay.DeltaResponse{Path: "10", Clock: 999, Items: items(256), Replicas: []network.Addr{"127.0.0.1:1", "127.0.0.1:2"}}},
	}
	reps := 20000
	if quick {
		reps = 4000
	}
	fmt.Printf("%-18s %10s %10s %7s %14s %14s %14s %14s\n",
		"message", "JSON B", "binary B", "ratio", "enc JSON µs", "enc bin µs", "dec JSON µs", "dec bin µs")
	for _, m := range messages {
		jsonData, err := network.EncodeMessage("bench", m.msg)
		if err != nil {
			return err
		}
		binData, err := network.EncodeMessageBinary("bench", m.msg, 0)
		if err != nil {
			return err
		}
		time4 := func(f func() error) (float64, error) {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return float64(time.Since(start).Microseconds()) / float64(reps), nil
		}
		encJSON, err := time4(func() error { _, err := network.EncodeMessage("bench", m.msg); return err })
		if err != nil {
			return err
		}
		encBin, err := time4(func() error { _, err := network.EncodeMessageBinary("bench", m.msg, 0); return err })
		if err != nil {
			return err
		}
		decJSON, err := time4(func() error { _, _, err := network.DecodeMessage(jsonData); return err })
		if err != nil {
			return err
		}
		decBin, err := time4(func() error { _, _, err := network.DecodeMessageBinary(binData); return err })
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10d %10d %6.1fx %14.2f %14.2f %14.2f %14.2f\n",
			m.name, len(jsonData), len(binData),
			float64(len(jsonData))/float64(len(binData)),
			encJSON, encBin, decJSON, decBin)
	}

	// Transport round trips over loopback.
	calls := 5000
	if quick {
		calls = 1000
	}
	resp := overlay.QueryResponse{Found: true, Items: items(16), Hops: 3, ResponsiblePath: "101101"}
	req := overlay.QueryRequest{Key: pgrid.FloatKey(0.42), TTL: 16}
	fmt.Printf("\n%-28s %12s %14s %12s\n", "transport", "calls", "p50 µs/call", "calls/s")
	for _, mode := range []struct {
		name string
		opts network.TCPOptions
	}{
		{"JSON dial-per-call (legacy)", network.TCPOptions{ForceJSON: true}},
		{"binary pooled", network.TCPOptions{}},
	} {
		server, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		server.Handle(func(context.Context, network.Addr, any) (any, error) { return resp, nil })
		client, err := network.ListenTCP("127.0.0.1:0")
		if err != nil {
			server.Close()
			return err
		}
		client.SetOptions(mode.opts)
		ctx := context.Background()
		if _, err := client.Call(ctx, server.Addr(), req); err != nil {
			client.Close()
			server.Close()
			return err
		}
		lat := make([]float64, calls)
		start := time.Now()
		for i := 0; i < calls; i++ {
			t0 := time.Now()
			if _, err := client.Call(ctx, server.Addr(), req); err != nil {
				client.Close()
				server.Close()
				return err
			}
			lat[i] = float64(time.Since(t0).Microseconds())
		}
		total := time.Since(start).Seconds()
		sort.Float64s(lat)
		fmt.Printf("%-28s %12d %14.1f %12.0f\n", mode.name, calls, lat[len(lat)/2], float64(calls)/total)
		client.Close()
		server.Close()
	}
	fmt.Println("\nThe binary codec removes the reflective JSON encode/decode from every")
	fmt.Println("hop, and the pooled transport removes the per-call TCP dial; together")
	fmt.Println("they shrink both halves of the per-message constant factor.")
	return nil
}

// zipfHotKeys measures the read path under skewed key popularity (beyond the
// paper): exact-match latency for a uniform workload versus Zipf-skewed ones,
// with the query answer cache and hot-key replica widening disabled and
// enabled. The simulated network charges every endpoint a service cost per
// message byte, so the replicas of a hot partition become a genuine queueing
// bottleneck: without the features, p95 latency grows steeply with skew as
// requests pile up behind the hot replicas' large answers; with them, most
// hot-key reads collapse into a cheap one-hop clock probe served from caches
// and recruited shadow replicas, and the tail stays near the uniform
// baseline.
func zipfHotKeys(quick bool, seed int64) error {
	header("Hot keys: answer cache + adaptive replica widening vs Zipf skew")
	ctx := context.Background()
	peers, vocab, valsPerKey := 48, 64, 12
	workers, queriesPerWorker := 12, 400
	if quick {
		peers, queriesPerWorker = 32, 200
	}
	const (
		fixedCost = 20 * time.Microsecond
		byteCost  = 200 * time.Nanosecond
	)

	keys := make([]pgrid.Key, vocab)
	build := func(features bool) (*pgrid.Cluster, error) {
		opts := []pgrid.Option{
			pgrid.WithPeers(peers),
			pgrid.WithMaxKeys(12),
			pgrid.WithMinReplicas(2),
			pgrid.WithRoutingRedundancy(4),
			pgrid.WithSeed(seed),
			pgrid.WithServiceCost(fixedCost, byteCost),
		}
		if features {
			opts = append(opts,
				pgrid.WithQueryCache(256, 250*time.Millisecond),
				pgrid.WithHotReplication(100, 3),
			)
		}
		c, err := pgrid.NewCluster(opts...)
		if err != nil {
			return nil, err
		}
		for k := 0; k < vocab; k++ {
			// Popularity rank is assigned to evenly spread key positions, so
			// skew concentrates load on one partition rather than on the
			// lexicographic neighbourhood a shared string prefix would give.
			keys[k] = pgrid.FloatKey((float64(k) + 0.5) / float64(vocab))
			for v := 0; v < valsPerKey; v++ {
				// Values sized like document identifiers, so a full answer
				// costs an order of magnitude more service time than a clock
				// probe.
				val := fmt.Sprintf("doc-%03d-%02d-%064d", k, v, k*valsPerKey+v)
				if err := c.Index(keys[k], val); err != nil {
					return nil, err
				}
			}
		}
		if _, err := c.Build(ctx); err != nil {
			return nil, err
		}
		return c, nil
	}

	workloads := []struct {
		name string
		s    float64 // Zipf exponent; 0 = uniform
	}{
		{"uniform", 0},
		{"zipf s=0.9", 0.9},
		{"zipf s=1.2", 1.2},
	}

	run := func(c *pgrid.Cluster, s float64) ([]float64, error) {
		var zipf *workload.Zipf
		if s != 0 {
			zipf = workload.NewZipf(vocab, s)
		}
		draw := func(rng *rand.Rand) pgrid.Key {
			if zipf == nil {
				return keys[rng.Intn(vocab)]
			}
			return keys[zipf.Rank(rng)]
		}
		// Warm-up primes the caches and the per-partition read-rate
		// estimates; the maintenance round in between is where the hot
		// peers recruit their shadow replicas.
		for phase, n := 0, queriesPerWorker/4; phase < 2; phase++ {
			if phase == 1 {
				c.MaintenanceRound(ctx)
				n = queriesPerWorker
			}
			lat := make([][]float64, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(1000*phase+w)))
					for i := 0; i < n; i++ {
						start := time.Now()
						if _, err := c.Search(ctx, draw(rng)); err != nil {
							errs[w] = err
							return
						}
						lat[w] = append(lat[w], float64(time.Since(start).Microseconds())/1000)
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			if phase == 1 {
				var all []float64
				for _, l := range lat {
					all = append(all, l...)
				}
				return all, nil
			}
		}
		return nil, nil
	}

	fmt.Printf("%d peers, %d keys x %d values, service cost %v + %v/B, %d workers x %d queries\n",
		peers, vocab, valsPerKey, fixedCost, byteCost, workers, queriesPerWorker)
	fmt.Println("baseline = cache and widening disabled; features = WithQueryCache + WithHotReplication")
	fmt.Println()
	fmt.Printf("%-12s %-12s %9s %9s %9s %9s %9s\n", "config", "workload", "p50 (ms)", "p95 (ms)", "mean", "hits", "recruits")
	p95 := make(map[[2]string]float64)
	for _, features := range []bool{false, true} {
		name := "baseline"
		if features {
			name = "features"
		}
		for _, wl := range workloads {
			c, err := build(features)
			if err != nil {
				return err
			}
			lat, err := run(c, wl.s)
			if err != nil {
				c.Close()
				return err
			}
			snap := c.MetricsSnapshot()
			c.Close()
			st := stats.Summarize(lat)
			p95[[2]string{name, wl.name}] = st.P95
			fmt.Printf("%-12s %-12s %9.2f %9.2f %9.2f %9.0f %9.0f\n",
				name, wl.name, st.Median, st.P95, st.Mean, snap.CacheHits, snap.WideningRecruits)
		}
	}
	fmt.Println()
	for _, name := range []string{"baseline", "features"} {
		base := p95[[2]string{name, "uniform"}]
		if base <= 0 {
			continue
		}
		fmt.Printf("%-12s p95 growth uniform -> zipf s=1.2: %.1fx\n",
			name, p95[[2]string{name, "zipf s=1.2"}]/base)
	}
	fmt.Println("\nNear-flat growth for the features row is the figure's point: skew no")
	fmt.Println("longer concentrates full-answer work on the hot partition's replicas.")
	return nil
}
