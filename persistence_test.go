package pgrid

import (
	"context"
	"errors"
	"testing"
)

// TestClusterPersistenceRestart exercises the public durability surface:
// a cluster built with WithPersistence survives peer restarts — reads keep
// succeeding, the restarted peers rejoin their partitions with their data,
// and their first maintenance rounds run through the in-sync/delta paths
// rather than full rebuilds.
func TestClusterPersistenceRestart(t *testing.T) {
	ctx := context.Background()
	cluster, err := NewCluster(
		WithPeers(16),
		WithSeed(7),
		WithPersistence(t.TempDir()),
		WithMinReplicas(2),
		WithMaxKeys(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	terms := []string{"database", "datalog", "overlay", "network", "index", "replica", "quorum", "journal"}
	for i, term := range terms {
		if err := cluster.IndexString(term, "doc-"+term); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	if _, err := cluster.Build(ctx); err != nil {
		t.Fatal(err)
	}
	// A few synchronous maintenance rounds spread the data and record
	// durable sync baselines.
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}

	// A live write after construction must survive the restarts too.
	if _, err := cluster.InsertString(ctx, "durability", "doc-durability"); err != nil && !errors.Is(err, ErrNoQuorum) {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}

	restarted := []int{1, 5, 9, 13}
	for _, i := range restarted {
		if err := cluster.RestartPeer(i); err != nil {
			t.Fatalf("restart peer %d: %v", i, err)
		}
	}
	for _, i := range restarted {
		p := cluster.Peer(i)
		if p.Path().Depth() == 0 && len(p.Replicas()) == 0 {
			t.Errorf("peer %d recovered neither path nor replicas", i)
		}
	}
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}

	for _, term := range append(terms, "durability") {
		hits, err := cluster.SearchString(ctx, term)
		if err != nil {
			t.Errorf("search %q after restart: %v", term, err)
			continue
		}
		if len(hits) == 0 {
			t.Errorf("search %q after restart: no hits", term)
		}
	}
	// The rejoins must not have degraded to full-set transfers.
	for _, i := range restarted {
		p := cluster.Peer(i)
		if full := p.Metrics.SyncsFull.Value(); full != 0 {
			t.Errorf("restarted peer %d ran %v full syncs", i, full)
		}
		if p.Metrics.SyncsInSync.Value()+p.Metrics.SyncsDelta.Value() == 0 {
			t.Errorf("restarted peer %d completed no in-sync/delta rounds", i)
		}
	}
}

// TestClusterRestartWithBackgroundMaintenance restarts peers while the
// asynchronous maintenance loops are running, which exercises the
// per-peer loop swap and the copy-on-write peer list under -race.
func TestClusterRestartWithBackgroundMaintenance(t *testing.T) {
	ctx := context.Background()
	cluster, err := NewCluster(WithPeers(8), WithSeed(3), WithPersistence(t.TempDir()), WithMinReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for _, term := range []string{"alpha", "beta", "gamma", "delta"} {
		if err := cluster.IndexString(term, "doc-"+term); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cluster.Build(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.StartMaintenance()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			_, _ = cluster.SearchString(ctx, "alpha")
		}
	}()
	if err := cluster.RestartPeer(2); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RestartPeer(6); err != nil {
		t.Fatal(err)
	}
	<-done
	cluster.StopMaintenance()
	if hits, err := cluster.SearchString(ctx, "beta"); err != nil || len(hits) == 0 {
		t.Errorf("search after concurrent restart: hits=%d err=%v", len(hits), err)
	}
}
