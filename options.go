package pgrid

import (
	"time"

	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/unstructured"
)

// options holds the tunable parameters of a Cluster.
//
// The full option surface, by concern:
//
//	Topology      WithPeers, WithBootstrapDegree, WithMaxConstructionRounds
//	Balancing     WithMaxKeys, WithMinReplicas, WithSampleSize,
//	              WithCorrectedProbabilities, WithHeuristicProbabilities
//	Routing       WithRoutingRedundancy, WithQueryAlpha, WithHedgeDelay,
//	              WithQueryFanout
//	Reads         WithQueryCache, WithHotReplication
//	Writes        WithWriteQuorum
//	Maintenance   WithMaintenanceInterval, WithTombstoneGC,
//	              WithFullSyncAntiEntropy
//	Durability    WithPersistence, WithStorageEngine
//	Network       WithNetworkLatency, WithMessageLoss, WithServiceCost
//	Reproducing   WithSeed
type options struct {
	peers         int
	overlay       overlay.Config
	degree        int
	maxRounds     int
	seed          int64
	latency       network.LatencyModel
	loss          float64
	service       network.ServiceModel
	maintainEvery time.Duration
	dataDir       string
}

// defaultOptions returns the paper's parameters: n_min = 5,
// d_max = 10*n_min, 32 peers.
func defaultOptions() options {
	return options{
		peers: 32,
		overlay: overlay.Config{
			MaxKeys:     50,
			MinReplicas: 5,
			MaxRefs:     3,
		},
		degree:        unstructured.DefaultDegree,
		maxRounds:     100,
		seed:          1,
		maintainEvery: 100 * time.Millisecond,
	}
}

// Option customises a Cluster.
type Option func(*options)

// WithPeers sets the number of peers in the cluster.
func WithPeers(n int) Option { return func(o *options) { o.peers = n } }

// WithSeed makes the cluster's randomness reproducible.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithMaxKeys sets d_max, the storage-load threshold above which a
// partition is split.
func WithMaxKeys(d int) Option { return func(o *options) { o.overlay.MaxKeys = d } }

// WithMinReplicas sets n_min, the minimal number of replica peers per
// partition.
func WithMinReplicas(n int) Option { return func(o *options) { o.overlay.MinReplicas = n } }

// WithSampleSize sets the number of locally stored keys sampled when peers
// estimate load fractions (0 = use all local keys).
func WithSampleSize(s int) Option { return func(o *options) { o.overlay.Samples = s } }

// WithCorrectedProbabilities enables the bias-corrected decision
// probabilities (the paper's COR variant).
func WithCorrectedProbabilities() Option {
	return func(o *options) { o.overlay.UseCorrection = true }
}

// WithHeuristicProbabilities replaces the analytical decision probabilities
// by the naive heuristic ones (the Figure 6(d) ablation).
func WithHeuristicProbabilities() Option {
	return func(o *options) { o.overlay.UseHeuristic = true }
}

// WithRoutingRedundancy sets the number of routing references kept per
// trie level.
func WithRoutingRedundancy(refs int) Option { return func(o *options) { o.overlay.MaxRefs = refs } }

// WithQueryAlpha sets α, the number of routing references an exact-match
// (or batch) query races concurrently at every forwarding step. The first
// responsible answer wins and stale references encountered by the losers
// are pruned, so a dead reference costs at most one hedge delay instead of
// a full timeout before an alternative is tried. 1 restores the sequential
// try-one-reference-at-a-time behaviour; the default is
// overlay.DefaultAlpha (3).
func WithQueryAlpha(alpha int) Option { return func(o *options) { o.overlay.Alpha = alpha } }

// WithQueryParallelism sets α, the per-hop lookup race width.
//
// Deprecated: use WithQueryAlpha, which names the paper's parameter
// directly. This alias keeps old callers compiling and behaves
// identically.
func WithQueryParallelism(alpha int) Option { return WithQueryAlpha(alpha) }

// WithHedgeDelay staggers the launch of the additional α lookup candidates:
// candidate i starts i*d after the first, so extra requests are only sent
// when the preferred reference has not answered promptly (hedged requests).
// A zero delay (the default) races all α candidates immediately.
func WithHedgeDelay(d time.Duration) Option { return func(o *options) { o.overlay.HedgeDelay = d } }

// WithQueryFanout bounds how many overlapping sub-trees a range ("shower")
// query — or next-hop groups of a batch query — forwards to concurrently.
// 1 restores the serial branch-after-branch behaviour; the default is
// overlay.DefaultFanout (4).
func WithQueryFanout(n int) Option { return func(o *options) { o.overlay.Fanout = n } }

// WithRangeFanout bounds concurrent sub-tree forwards of range and batch
// queries.
//
// Deprecated: use WithQueryFanout; the knob has always applied to batch
// queries too, not only ranges. This alias keeps old callers compiling and
// behaves identically.
func WithRangeFanout(n int) Option { return WithQueryFanout(n) }

// WithQueryCache enables the query-path answer cache on every peer: a peer
// that forwards an exact-match lookup memoizes the answer (bounded LRU of
// size entries, each expiring after ttl), and serves later lookups for the
// same key after revalidating the entry with a one-round-trip logical-clock
// probe to the responsible replica that produced it. A probe mismatch —
// any write to the partition advances its clock — invalidates the entry and
// routes normally, so cached reads are never stale (read-your-writes
// holds). A size of 0 disables the cache (the default); a ttl of 0 uses
// overlay.DefaultQueryCacheTTL.
func WithQueryCache(size int, ttl time.Duration) Option {
	return func(o *options) {
		o.overlay.QueryCacheSize = size
		o.overlay.QueryCacheTTL = ttl
	}
}

// WithHotReplication enables load-triggered replica widening: a peer whose
// partition sustains more than threshold locally-answered exact lookups per
// second recruits up to maxExtra temporary read replicas from its routing
// contacts, advertises them on query answers so forwarding peers spread
// subsequent reads across the widened set, and releases them (leases simply
// lapse otherwise) once the rate subsides. A threshold of 0 disables
// widening (the default); maxExtra 0 uses overlay.DefaultHotMaxExtra.
func WithHotReplication(threshold float64, maxExtra int) Option {
	return func(o *options) {
		o.overlay.HotReadThreshold = threshold
		o.overlay.HotMaxExtra = maxExtra
	}
}

// WithWriteQuorum sets the number of replica acknowledgements (including
// the responsible peer itself) a routed Insert or Delete needs before it is
// reported successful. 1 (the default) accepts the responsible peer alone;
// higher values trade write latency for durability under churn. Writes that
// miss the quorum return ErrNoQuorum but still reach the replicas that
// acknowledged, and background maintenance spreads them further.
func WithWriteQuorum(n int) Option { return func(o *options) { o.overlay.WriteQuorum = n } }

// WithMaintenanceInterval sets the mean pause between two background
// maintenance ticks per peer (anti-entropy with a random replica plus
// routing-reference probing) once StartMaintenance is called. The default is
// 100ms, suitable for the in-process simulated network.
func WithMaintenanceInterval(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.maintainEvery = d
		}
	}
}

// WithTombstoneGC bounds the lifetime of delete tombstones (Cassandra-style
// gc_grace): a tombstone is pruned once it is older than age (wall clock) or
// once the peer's store clock has advanced by more than versions since it
// was recorded — whichever criterion is configured and met first; a zero
// disables that criterion. The horizon must comfortably exceed the
// maintenance interval: the digest/delta anti-entropy protocol detects
// replicas that stayed away longer and rebuilds them from an authoritative
// replica instead of merging (which could resurrect pruned deletes), at the
// cost of discarding whatever the stale replica never synced out. Without
// this option tombstones are kept forever.
func WithTombstoneGC(age time.Duration, versions uint64) Option {
	return func(o *options) {
		o.overlay.TombstoneGCAge = age
		o.overlay.TombstoneGCVersions = versions
	}
}

// WithPersistence makes every peer's replica state durable: each peer's
// store is backed by a CRC-framed, fsync-batched write-ahead log plus
// periodic compacted snapshots under dir/peer-NNNNN, capturing its items,
// delete tombstones, logical clock, tombstone-GC floor, partition path and
// per-replica anti-entropy baselines. Cluster.RestartPeer then simulates a
// process crash and recovery: the restarted peer reopens its store and
// resumes maintenance through the cheap exact-delta sync path instead of a
// first-contact walk or a post-GC rebuild. Call Cluster.Close when done to
// flush the logs.
func WithPersistence(dir string) Option {
	return func(o *options) { o.dataDir = dir }
}

// WithStorageEngine selects the pair-storage engine backing every peer's
// replica store: "mem" (the default; an in-memory map) or "disk"
// (log-structured on-disk segments with a small memtable, keeping a
// partition's resident set bounded regardless of how many pairs it holds —
// for nodes storing millions of keys). The engine is independent of
// WithPersistence: a disk-engine store without persistence keeps its
// segments in a throwaway directory removed on Close, while with
// persistence the segments live in the peer's data directory and a restart
// recovers from them without rescanning every pair. An empty engine name
// uses the PGRID_ENGINE environment variable, falling back to "mem".
func WithStorageEngine(engine string) Option {
	return func(o *options) { o.overlay.StorageEngine = engine }
}

// WithFullSyncAntiEntropy restores the legacy full-set anti-entropy
// exchange, in which every maintenance tick ships the partition's entire
// item and tombstone set to the chosen replica. It exists as the baseline
// for benchmarking the digest/delta protocol (the default) and should not be
// combined with WithTombstoneGC: a full-set merge cannot tell a stale live
// copy from a fresh write once the tombstone is pruned.
func WithFullSyncAntiEntropy() Option {
	return func(o *options) { o.overlay.FullSyncAntiEntropy = true }
}

// WithBootstrapDegree sets the degree of the unstructured bootstrap
// overlay.
func WithBootstrapDegree(d int) Option { return func(o *options) { o.degree = d } }

// WithMaxConstructionRounds bounds the number of construction rounds Build
// will run.
func WithMaxConstructionRounds(r int) Option { return func(o *options) { o.maxRounds = r } }

// WithNetworkLatency applies a constant one-way message latency to the
// cluster's simulated network.
func WithNetworkLatency(d time.Duration) Option {
	return func(o *options) { o.latency = network.ConstantLatency(d) }
}

// WithMessageLoss drops each message independently with the given
// probability.
func WithMessageLoss(p float64) Option { return func(o *options) { o.loss = p } }

// WithServiceCost gives every simulated endpoint a finite processing
// capacity: each delivered request occupies its receiver for
// fixed + perByte×(request+response bytes) of service time, queueing FIFO
// behind earlier requests. With a service cost configured, sustained load on
// one peer inflates that peer's latency — which is what makes hot-key
// experiments (and the cache/widening countermeasures) measurable in
// simulation. Zero values disable the model (the default).
func WithServiceCost(fixed, perByte time.Duration) Option {
	return func(o *options) {
		o.service = network.ServiceModel{Fixed: fixed, PerByte: perByte}
	}
}
