package pgrid

// This file contains one benchmark per table/figure of the paper's
// evaluation, so `go test -bench=.` exercises every experiment end to end
// (with sizes reduced to keep a full benchmark run in the minutes range).
// The cmd/pgridbench binary runs the same experiments at full size and
// prints the rows/series the paper reports; docs/ARCHITECTURE.md maps the
// figures onto the packages.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pgrid/internal/churn"
	"pgrid/internal/core"
	"pgrid/internal/keyspace"
	"pgrid/internal/network"
	"pgrid/internal/overlay"
	"pgrid/internal/replication"
	"pgrid/internal/routing"
	"pgrid/internal/sim"
	"pgrid/internal/stats"
	"pgrid/internal/workload"
)

// contextBackground is a tiny helper so benchmarks read uniformly.
func contextBackground() context.Context { return context.Background() }

// benchSweepConfig returns a reduced-size Figure 6 sweep configuration.
func benchSweepConfig() sim.SweepConfig {
	return sim.SweepConfig{
		Repetitions:   1,
		Peers:         96,
		KeysPerPeer:   10,
		MinReplicas:   3,
		MaxKeysFactor: 10,
		Seed:          1,
	}
}

// BenchmarkFig3AlphaSecondDerivative regenerates Figure 3: the numerical
// solution for alpha(p) and its second derivative over the skewed branch.
func BenchmarkFig3AlphaSecondDerivative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for p := 0.05; p <= 0.3; p += 0.01 {
			if _, err := core.AlphaOf(p); err != nil {
				b.Fatal(err)
			}
			core.AlphaSecondDerivative(p)
		}
	}
}

// BenchmarkFig4PartitionDeviation regenerates Figure 4: the deviation of the
// partition-0 size from n*p for the five models (MVA, SAM, AEP, COR, AUT).
func BenchmarkFig4PartitionDeviation(b *testing.B) {
	cfg := core.ExperimentConfig{N: 300, Samples: 10, Trials: 5, Seed: 1}
	fractions := []float64{0.1, 0.3, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.Sweep(cfg, fractions)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(core.AllModels())*len(fractions) {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkFig5Interactions regenerates Figure 5: the number of interactions
// required by each model (the same sweep, reported on the cost axis).
func BenchmarkFig5Interactions(b *testing.B) {
	cfg := core.ExperimentConfig{N: 300, Samples: 10, Trials: 5, Seed: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.Sweep(cfg, []float64{0.05, 0.25, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		total := 0.0
		for _, pt := range pts {
			total += pt.MeanInteractions
		}
		if total <= 0 {
			b.Fatal("no interactions measured")
		}
	}
}

// benchRunOnce runs one construction experiment for the given distribution
// and population.
func benchRunOnce(b *testing.B, dist workload.Distribution, peers, nmin, dmaxFactor int, heuristic bool) *sim.Result {
	b.Helper()
	cfg := sim.Config{
		Peers:        peers,
		KeysPerPeer:  10,
		Distribution: dist,
		Overlay: overlay.Config{
			MaxKeys:      dmaxFactor * nmin,
			MinReplicas:  nmin,
			MaxRefs:      3,
			UseHeuristic: heuristic,
		},
		MaxRounds: 80,
		Seed:      int64(peers) + int64(nmin),
	}
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6aDeviationByPopulation regenerates Figure 6(a): deviation per
// distribution for growing peer populations.
func BenchmarkFig6aDeviationByPopulation(b *testing.B) {
	for _, dist := range []workload.Distribution{workload.Uniform{}, workload.NewPareto(1.0)} {
		for _, peers := range []int{64, 128} {
			b.Run(fmt.Sprintf("%s/n=%d", dist.Name(), peers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := benchRunOnce(b, dist, peers, 3, 10, false)
					if res.Deviation <= 0 {
						b.Fatal("no deviation measured")
					}
				}
			})
		}
	}
}

// BenchmarkFig6bDeviationByReplication regenerates Figure 6(b): deviation
// for increasing required replication n_min.
func BenchmarkFig6bDeviationByReplication(b *testing.B) {
	for _, nmin := range []int{3, 5} {
		b.Run(fmt.Sprintf("nmin=%d", nmin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunOnce(b, workload.NewPareto(1.0), 96, nmin, 10, false)
			}
		})
	}
}

// BenchmarkFig6cDeviationBySampleSize regenerates Figure 6(c): deviation for
// different d_max factors (the sample size available to the estimators).
func BenchmarkFig6cDeviationBySampleSize(b *testing.B) {
	for _, factor := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("dmax=%dxnmin", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunOnce(b, workload.Uniform{}, 96, 3, factor, false)
			}
		})
	}
}

// BenchmarkFig6dTheoryVsHeuristics regenerates Figure 6(d): analytical
// decision probabilities versus naive heuristics.
func BenchmarkFig6dTheoryVsHeuristics(b *testing.B) {
	for _, heuristic := range []bool{false, true} {
		name := "theory"
		if heuristic {
			name = "heuristic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunOnce(b, workload.NewPareto(1.0), 96, 3, 10, heuristic)
			}
		})
	}
}

// BenchmarkFig6eInteractionsPerPeer regenerates Figure 6(e): construction
// interactions per peer across populations.
func BenchmarkFig6eInteractionsPerPeer(b *testing.B) {
	for _, peers := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", peers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := benchRunOnce(b, workload.Uniform{}, peers, 3, 10, false)
				if res.InteractionsPerPeer <= 0 {
					b.Fatal("no interactions measured")
				}
			}
		})
	}
}

// BenchmarkFig6fKeysMoved regenerates Figure 6(f): data keys moved per peer
// during construction.
func BenchmarkFig6fKeysMoved(b *testing.B) {
	for _, dist := range []workload.Distribution{workload.Uniform{}, workload.NewNormal()} {
		b.Run(dist.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := benchRunOnce(b, dist, 96, 3, 10, false)
				if res.KeysMovedPerPeer <= 0 {
					b.Fatal("no key movement measured")
				}
			}
		})
	}
}

// benchTimelineConfig returns a reduced PlanetLab-style timeline.
func benchTimelineConfig() sim.TimelineConfig {
	return sim.TimelineConfig{
		Experiment: sim.Config{
			Peers:        96,
			KeysPerPeer:  10,
			Distribution: workload.NewTextCorpus(workload.DefaultCorpusConfig()),
			Overlay:      overlay.Config{MaxKeys: 30, MinReplicas: 3, MaxRefs: 4},
			MaxRounds:    60,
			Seed:         3,
		},
		JoinEnd:       20 * time.Minute,
		ConstructEnd:  60 * time.Minute,
		QueryEnd:      90 * time.Minute,
		ChurnEnd:      110 * time.Minute,
		QueryInterval: 2 * time.Minute,
		Churn:         churn.PaperModel(),
		HopLatency:    4 * time.Second,
		Step:          time.Minute,
	}
}

// BenchmarkFig7PeersOverTime regenerates Figure 7: the number of
// participating peers over the experiment timeline.
func BenchmarkFig7PeersOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTimeline(benchTimelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Peers.Buckets()) == 0 {
			b.Fatal("no peer series")
		}
	}
}

// BenchmarkFig8Bandwidth regenerates Figure 8: aggregate maintenance and
// query bandwidth over the timeline.
func BenchmarkFig8Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTimeline(benchTimelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MaintenanceBandwidth.Buckets()) == 0 || len(res.QueryBandwidth.Buckets()) == 0 {
			b.Fatal("no bandwidth series")
		}
	}
}

// BenchmarkFig9QueryLatency regenerates Figure 9: query latency over the
// timeline, including the churn phase.
func BenchmarkFig9QueryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTimeline(benchTimelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.QueryLatency.Buckets()) == 0 {
			b.Fatal("no latency series")
		}
	}
}

// BenchmarkTable1SystemMetrics regenerates the in-text metrics of Section
// 5.2 (deviation, path length, hops, replication factor, success rate).
func BenchmarkTable1SystemMetrics(b *testing.B) {
	cfg := sim.Config{
		Peers:        96,
		KeysPerPeer:  10,
		Distribution: workload.NewTextCorpus(workload.DefaultCorpusConfig()),
		Overlay:      overlay.Config{MaxKeys: 30, MinReplicas: 3, MaxRefs: 4},
		MaxRounds:    80,
		Queries:      100,
		Seed:         4,
	}
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.QuerySuccessRate <= 0 {
			b.Fatal("no successful queries")
		}
	}
}

// BenchmarkTable2PartitionCost regenerates the Section 3 cost comparison:
// eager/AEP versus autonomous partitioning at p = 1/2.
func BenchmarkTable2PartitionCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.TheoreticalInteractions(0.5, 1000); err != nil {
			b.Fatal(err)
		}
		core.AutonomousTheoreticalInteractions(1000)
	}
}

// --- Ablation benchmarks for the reproduction's design choices ---

// BenchmarkAblationSampleSize measures the influence of the load-estimation
// sample size (the paper finds none).
func BenchmarkAblationSampleSize(b *testing.B) {
	for _, samples := range []int{0, 2, 10} {
		b.Run(fmt.Sprintf("s=%d", samples), func(b *testing.B) {
			cfg := sim.Config{
				Peers:        96,
				KeysPerPeer:  10,
				Distribution: workload.NewPareto(1.0),
				Overlay:      overlay.Config{MaxKeys: 30, MinReplicas: 3, Samples: samples},
				MaxRounds:    80,
				Seed:         5,
			}
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCorrectedProbabilities compares plain AEP with the
// bias-corrected COR variant in the discrete partitioning model.
func BenchmarkAblationCorrectedProbabilities(b *testing.B) {
	for _, m := range []core.Model{core.ModelAEP, core.ModelCOR} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := core.ExperimentConfig{N: 500, Samples: 10, Trials: 5, Seed: 6}
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(cfg, []float64{0.2, 0.4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRoutingRedundancy measures query success under churn for
// different numbers of routing references per level.
func BenchmarkAblationRoutingRedundancy(b *testing.B) {
	for _, refs := range []int{1, 3} {
		b.Run(fmt.Sprintf("refs=%d", refs), func(b *testing.B) {
			cfg := sim.Config{
				Peers:           96,
				KeysPerPeer:     10,
				Distribution:    workload.Uniform{},
				Overlay:         overlay.Config{MaxKeys: 30, MinReplicas: 3, MaxRefs: refs},
				MaxRounds:       80,
				Queries:         100,
				OfflineFraction: 0.25,
				Seed:            7,
			}
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReplicaEstimation exercises the key-overlap replica
// estimator against exact knowledge in the discrete model (the estimator is
// what lets the protocol run without any global coordination).
func BenchmarkAblationReplicaEstimation(b *testing.B) {
	cfg := sim.Config{
		Peers:        96,
		KeysPerPeer:  10,
		Distribution: workload.Uniform{},
		Overlay:      overlay.Config{MaxKeys: 30, MinReplicas: 3},
		MaxRounds:    80,
		Seed:         8,
	}
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanReplicasPerPartition <= 0 {
			b.Fatal("no replication measured")
		}
	}
}

// BenchmarkClusterBuild measures the end-to-end public-API construction
// path.
func BenchmarkClusterBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(WithPeers(48), WithMaxKeys(20), WithMinReplicas(2), WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 300; j++ {
			_ = c.IndexFloat(float64(j)/300, fmt.Sprintf("v%d", j))
		}
		b.StartTimer()
		if _, err := c.Build(contextBackground()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent query-engine benchmarks ---
//
// These compare the α-parallel lookup and concurrent shower fan-out against
// their sequential baselines (α=1, fanout=1) on an overlay with realistic
// message latency and a fraction of stale routing references (offline
// peers), the regime the concurrency is designed for. Run them with -race to
// exercise the in-flight accounting.
//
// Note that the concurrent engine (α=3, fanout=4) is now the DEFAULT for
// every query in this repo, including the paper-figure reproductions above:
// query bandwidth accounting includes the extra racing requests, and success
// under churn benefits from racing plus pruning. Pin alpha=1/fanout=1 in
// overlay.Config for the historical sequential regime.
//
// The query engine prunes stale references as it encounters them, which
// would drain the very regime these benchmarks measure after the first few
// iterations; snapshotRefs/restoreRefs re-introduce the pruned references
// every iteration so all b.N samples see the same overlay.

// snapshotRefs captures every peer's routing references.
func snapshotRefs(c *Cluster) [][][]routing.Ref {
	out := make([][][]routing.Ref, c.Peers())
	for i := range out {
		_, levels := c.Peer(i).Table().Snapshot()
		out[i] = levels
	}
	return out
}

// restoreRefs re-adds previously snapshotted references (pruned stale ones
// included) to every peer's routing table.
func restoreRefs(c *Cluster, snaps [][][]routing.Ref) {
	for i := range snaps {
		t := c.Peer(i).Table()
		for level, refs := range snaps[i] {
			for _, ref := range refs {
				t.Add(level, ref)
			}
		}
	}
}

// benchQueryEngineCluster builds a constructed overlay with per-message
// latency, indexes nKeys float keys, and takes every fifth peer offline so
// routing tables contain stale references.
func benchQueryEngineCluster(b *testing.B, seed int64, latency time.Duration, offline bool) (*Cluster, []Key) {
	b.Helper()
	c, err := NewCluster(
		WithPeers(64),
		WithMaxKeys(20),
		WithMinReplicas(2),
		WithRoutingRedundancy(4),
		WithSeed(seed),
		WithNetworkLatency(latency),
	)
	if err != nil {
		b.Fatal(err)
	}
	const nKeys = 400
	keys := make([]Key, nKeys)
	for j := 0; j < nKeys; j++ {
		keys[j] = FloatKey(float64(j) / nKeys)
		_ = c.Index(keys[j], fmt.Sprintf("v%d", j))
	}
	if _, err := c.Build(contextBackground()); err != nil {
		b.Fatal(err)
	}
	if offline {
		for i := 0; i < c.Peers(); i += 5 {
			c.SetOnline(i, false)
		}
	}
	return c, keys
}

// BenchmarkAlphaLookupStaleRefs measures exact-match lookups racing
// α ∈ {1,2,3,5} references per hop while 20% of the peers are offline: with
// α=1 a stale reference costs its full failure latency (a one-way delay in
// the simulator, a dial timeout on TCP) before the next candidate is tried,
// with α>1 the live candidates answer concurrently. Pruned references are
// restored every iteration so each sample sees the same stale-ref regime;
// the p50-us and p95-us metrics report the per-query latency distribution
// (ns/op includes the refresh and is not the figure of merit).
func BenchmarkAlphaLookupStaleRefs(b *testing.B) {
	for _, alpha := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			c, keys := benchQueryEngineCluster(b, 7, 500*time.Microsecond, true)
			snaps := snapshotRefs(c)
			c.SetQueryConcurrency(alpha, 0, -1)
			origin := c.Peer(1) // peer 1 stays online
			ctx := contextBackground()
			lat := make([]float64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				restoreRefs(c, snaps)
				start := time.Now()
				_, _ = origin.Query(ctx, keys[(i*37)%len(keys)])
				lat = append(lat, float64(time.Since(start).Microseconds()))
			}
			b.StopTimer()
			sum := stats.Summarize(lat)
			b.ReportMetric(sum.Median, "p50-us")
			b.ReportMetric(sum.P95, "p95-us")
		})
	}
}

// BenchmarkRangeFanout measures a multi-partition shower query with the
// sub-tree fan-out forwarded serially (fanout=1) versus concurrently.
func BenchmarkRangeFanout(b *testing.B) {
	for _, fanout := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			c, _ := benchQueryEngineCluster(b, 8, 500*time.Microsecond, false)
			c.SetQueryConcurrency(0, fanout, -1)
			ctx := contextBackground()
			lo, hi := FloatKey(0.05), FloatKey(0.95)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.SearchRange(ctx, lo, hi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchVsSingleLookups compares resolving 32 keys as one pipelined
// batch (keys sharing a route share messages) against 32 independent
// sequential lookups from the same origin.
func BenchmarkBatchVsSingleLookups(b *testing.B) {
	const batch = 32
	pick := func(keys []Key, i int) []Key {
		out := make([]Key, batch)
		for j := 0; j < batch; j++ {
			out[j] = keys[(i*batch+j*13)%len(keys)]
		}
		return out
	}
	b.Run("single", func(b *testing.B) {
		c, keys := benchQueryEngineCluster(b, 9, 200*time.Microsecond, false)
		origin := c.Peer(1)
		ctx := contextBackground()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range pick(keys, i) {
				_, _ = origin.Query(ctx, k)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		c, keys := benchQueryEngineCluster(b, 9, 200*time.Microsecond, false)
		origin := c.Peer(1)
		ctx := contextBackground()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = origin.QueryBatch(ctx, pick(keys, i))
		}
	})
}

// BenchmarkClusterQuery measures exact-match query latency on a constructed
// overlay.
func BenchmarkClusterQuery(b *testing.B) {
	c, err := NewCluster(WithPeers(48), WithMaxKeys(20), WithMinReplicas(2), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 300; j++ {
		_ = c.IndexFloat(float64(j)/300, fmt.Sprintf("v%d", j))
	}
	if _, err := c.Build(contextBackground()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(contextBackground(), FloatKey(float64(i%300)/300)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterQueryCacheHit measures the answer-cache hot path: every
// entry peer holds the answer after warm-up, so each search costs a cache
// lookup plus the one-hop clock revalidation probe instead of routing.
// Compare with BenchmarkClusterQuery for the uncached cost.
func BenchmarkClusterQueryCacheHit(b *testing.B) {
	c, err := NewCluster(WithPeers(48), WithMaxKeys(20), WithMinReplicas(2), WithSeed(1),
		WithQueryCache(64, time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 300; j++ {
		_ = c.IndexFloat(float64(j)/300, fmt.Sprintf("v%d", j))
	}
	if _, err := c.Build(contextBackground()); err != nil {
		b.Fatal(err)
	}
	// Warm every peer's cache for the measured key.
	for j := 0; j < 4*c.Peers(); j++ {
		if _, err := c.Search(contextBackground(), FloatKey(0.5)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(contextBackground(), FloatKey(0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotReplicaWidenedQuery measures lookups against a partition that
// has recruited shadow replicas: the raced router spreads reads across the
// widened set, each serve revalidating with a clock probe.
func BenchmarkHotReplicaWidenedQuery(b *testing.B) {
	c, err := NewCluster(WithPeers(48), WithMaxKeys(20), WithMinReplicas(2), WithSeed(1),
		WithHotReplication(50, 3))
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 300; j++ {
		_ = c.IndexFloat(float64(j)/300, fmt.Sprintf("v%d", j))
	}
	if _, err := c.Build(contextBackground()); err != nil {
		b.Fatal(err)
	}
	// Drive the hot key's read rate over the threshold, then let one
	// maintenance round run the widening state machine.
	for j := 0; j < 400; j++ {
		if _, err := c.Search(contextBackground(), FloatKey(0.5)); err != nil {
			b.Fatal(err)
		}
	}
	c.MaintenanceRound(contextBackground())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(contextBackground(), FloatKey(0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSyncPeers builds two in-sync replica peers of the root partition with
// the given number of items, for anti-entropy protocol benchmarks.
func benchSyncPeers(b *testing.B, items int, full bool) (*overlay.Peer, *overlay.Peer) {
	b.Helper()
	net := network.NewSim(network.SimConfig{Seed: 3})
	cfg := overlay.Config{MaxKeys: 1 << 20, MinReplicas: 1, FullSyncAntiEntropy: full, Seed: 3}
	pa := overlay.New(cfg, net.Endpoint("bench-a"))
	cfgB := cfg
	cfgB.Seed = 4
	pb := overlay.New(cfgB, net.Endpoint("bench-b"))
	pa.AddReplica(pb.Addr())
	pb.AddReplica(pa.Addr())
	for i := 0; i < items; i++ {
		it := replication.Item{Key: FloatKey(float64(i) / float64(items)), Value: fmt.Sprintf("v%d", i)}
		pa.Store().Add(it)
		pb.Store().Add(it)
	}
	return pa, pb
}

// BenchmarkAntiEntropySteadyState measures one digest-protocol sync between
// identical replicas — the steady-state maintenance hot path, whose cost
// must stay independent of the store size.
func BenchmarkAntiEntropySteadyState(b *testing.B) {
	pa, pb := benchSyncPeers(b, 1000, false)
	ctx := contextBackground()
	if _, err := pa.SyncReplica(ctx, pb.Addr()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pa.SyncReplica(ctx, pb.Addr()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntiEntropyFullSet measures one legacy full-set exchange between
// identical replicas of the same size — the baseline the digest protocol
// replaces (its cost grows with the store).
func BenchmarkAntiEntropyFullSet(b *testing.B) {
	pa, pb := benchSyncPeers(b, 1000, true)
	ctx := contextBackground()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pa.AntiEntropy(ctx, pb.Addr()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntiEntropyDelta measures an incremental sync moving a handful of
// changed pairs between 1000-item replicas.
func BenchmarkAntiEntropyDelta(b *testing.B) {
	pa, pb := benchSyncPeers(b, 1000, false)
	ctx := contextBackground()
	if _, err := pa.SyncReplica(ctx, pb.Addr()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.Store().Insert(replication.Item{Key: FloatKey(0.111), Value: fmt.Sprintf("hot-%d", i)})
		pa.Store().Delete(FloatKey(0.111), fmt.Sprintf("hot-%d", i-1))
		if _, err := pa.SyncReplica(ctx, pb.Addr()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreMutation measures raw store insert+delete throughput,
// including the incremental digest-tree and version maintenance every
// mutation now performs — the write-amplification guard for the digest
// subsystem.
func BenchmarkStoreMutation(b *testing.B) {
	s := replication.NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := FloatKey(float64(i%4096) / 4096)
		val := fmt.Sprintf("v%d", i%64)
		s.Insert(replication.Item{Key: key, Value: val})
		s.Delete(key, val)
	}
}

// BenchmarkClusterInsertDelete measures the routed live-write path end to
// end (α-raced routing, replica fan-out, quorum-ack).
func BenchmarkClusterInsertDelete(b *testing.B) {
	c, err := NewCluster(WithPeers(48), WithMaxKeys(20), WithMinReplicas(2), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 300; j++ {
		_ = c.IndexFloat(float64(j)/300, fmt.Sprintf("v%d", j))
	}
	ctx := contextBackground()
	if _, err := c.Build(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := FloatKey((float64(i%300) + 0.41) / 300)
		val := fmt.Sprintf("live-%d", i)
		_, _ = c.Insert(ctx, key, val)
		_, _ = c.Delete(ctx, key, val)
	}
}

// BenchmarkStoreMutationWAL is BenchmarkStoreMutation against a persistent
// store with the default fsync batching — the WAL-enabled write hot path
// introduced by the durability subsystem. The delta versus
// BenchmarkStoreMutation is the full cost of durability per mutation.
func BenchmarkStoreMutationWAL(b *testing.B) {
	s, err := replication.OpenStore(b.TempDir(), replication.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := FloatKey(float64(i%4096) / 4096)
		val := fmt.Sprintf("v%d", i%64)
		s.Insert(replication.Item{Key: key, Value: val})
		s.Delete(key, val)
	}
}

// BenchmarkStoreWALAppend measures the per-insert cost of the WAL write
// path alone (buffered frame append under the default fsync batching).
func BenchmarkStoreWALAppend(b *testing.B) {
	s, err := replication.OpenStore(b.TempDir(), replication.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Bounded value set: re-inserting the same pairs re-stamps their
		// generation in place, so per-op cost stays flat and the WAL
		// append (one record per insert) dominates what is measured.
		s.Insert(replication.Item{Key: FloatKey(float64(i%4096) / 4096), Value: fmt.Sprintf("v%d", i%64)})
	}
}

// BenchmarkStoreRecover measures crash recovery: replaying a 5000-record
// WAL into a fresh store, which bounds a restarted peer's time-to-rejoin
// between checkpoints.
func BenchmarkStoreRecover(b *testing.B) {
	dir := b.TempDir()
	s, err := replication.OpenStore(dir, replication.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		s.Insert(replication.Item{Key: FloatKey(float64(i%4096) / 4096), Value: fmt.Sprintf("v%d", i%64)})
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := replication.OpenStore(dir, replication.PersistOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCheckpoint measures writing a snapshot of a 5000-pair store
// and rotating the WAL — the periodic compaction cost the maintenance tick
// pays when the log outgrows the threshold.
func BenchmarkStoreCheckpoint(b *testing.B) {
	s, err := replication.OpenStore(b.TempDir(), replication.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5000; i++ {
		s.Insert(replication.Item{Key: FloatKey(float64(i%4096) / 4096), Value: fmt.Sprintf("v%d", i%64)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireMessage returns a representative mid-size protocol message (a
// query response carrying 16 items) for the codec benchmarks.
func benchWireMessage() overlay.QueryResponse {
	items := make([]replication.Item, 16)
	for i := range items {
		items[i] = replication.Item{
			Key:   FloatKey(float64(i) / 16),
			Value: fmt.Sprintf("document-%04d", i),
			Gen:   uint64(i % 3),
		}
	}
	return overlay.QueryResponse{
		Found:           true,
		Items:           items,
		Hops:            3,
		Responsible:     "127.0.0.1:40404",
		ResponsiblePath: "101101",
	}
}

// BenchmarkWireEncodeBinary measures encoding one protocol message with the
// compact binary codec (the pooled transport's hot path) and reports the
// frame size, the bytes-per-message half of the transport comparison.
func BenchmarkWireEncodeBinary(b *testing.B) {
	msg := benchWireMessage()
	data, err := network.EncodeMessageBinary("bench", msg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.EncodeMessageBinary("bench", msg, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "wire-B/msg")
}

// BenchmarkWireEncodeJSON measures encoding the same message with the
// legacy reflective JSON envelope — the dial-per-call transport's codec.
func BenchmarkWireEncodeJSON(b *testing.B) {
	msg := benchWireMessage()
	data, err := network.EncodeMessage("bench", msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.EncodeMessage("bench", msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "wire-B/msg")
}

// BenchmarkWireDecodeBinary measures the binary decode path (frame parse,
// reassembly bookkeeping, hand-written typed codec).
func BenchmarkWireDecodeBinary(b *testing.B) {
	data, err := network.EncodeMessageBinary("bench", benchWireMessage(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := network.DecodeMessageBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeJSON measures the legacy reflective JSON decode path.
func BenchmarkWireDecodeJSON(b *testing.B) {
	data, err := network.EncodeMessage("bench", benchWireMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := network.DecodeMessage(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTCPPair starts a loopback server answering every query with the
// representative response, plus a client endpoint.
func benchTCPPair(b *testing.B, opts network.TCPOptions) (server, client *network.TCPEndpoint) {
	b.Helper()
	server, err := network.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	resp := benchWireMessage()
	server.Handle(func(context.Context, network.Addr, any) (any, error) { return resp, nil })
	client, err = network.ListenTCP("127.0.0.1:0")
	if err != nil {
		server.Close()
		b.Fatal(err)
	}
	client.SetOptions(opts)
	b.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return server, client
}

// BenchmarkTCPCallBinaryPooled measures one request/response over the
// pooled persistent-connection binary transport — the per-hop wire cost a
// query pays in a TCP deployment. Compare with
// BenchmarkTCPCallJSONDialPerCall for the transport upgrade's effect.
func BenchmarkTCPCallBinaryPooled(b *testing.B) {
	server, client := benchTCPPair(b, network.TCPOptions{})
	ctx := contextBackground()
	req := overlay.QueryRequest{Key: FloatKey(0.42), TTL: 16}
	if _, err := client.Call(ctx, server.Addr(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, server.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPCallJSONDialPerCall measures the same exchange over the
// legacy transport behaviour: a fresh TCP dial and a reflective JSON
// envelope per call.
func BenchmarkTCPCallJSONDialPerCall(b *testing.B) {
	server, client := benchTCPPair(b, network.TCPOptions{ForceJSON: true})
	ctx := contextBackground()
	req := overlay.QueryRequest{Key: FloatKey(0.42), TTL: 16}
	if _, err := client.Call(ctx, server.Addr(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, server.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPCallBinaryPooledParallel drives the pooled transport with
// concurrent callers, the shape α-raced lookups produce: all requests
// multiplex over one connection per peer.
func BenchmarkTCPCallBinaryPooledParallel(b *testing.B) {
	server, client := benchTCPPair(b, network.TCPOptions{})
	req := overlay.QueryRequest{Key: FloatKey(0.42), TTL: 16}
	if _, err := client.Call(contextBackground(), server.Addr(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := contextBackground()
		for pb.Next() {
			if _, err := client.Call(ctx, server.Addr(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreCheckpointLargeValues measures checkpointing a store whose
// image is dominated by value bytes — the case where the streamed binary
// snapshot writer's allocation profile differs most from the old
// whole-image json.Marshal (allocs/op is the interesting column).
func BenchmarkStoreCheckpointLargeValues(b *testing.B) {
	s, err := replication.OpenStore(b.TempDir(), replication.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	value := make([]byte, 4096)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < 2000; i++ {
		s.Insert(replication.Item{Key: FloatKey(float64(i) / 2000), Value: fmt.Sprintf("%s-%d", value, i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineStore opens a persistent store on the given engine kind,
// preloads n distinct pairs and checkpoints, so a disk engine's pairs are
// resident in real segment files rather than only the memtable — the
// steady state the engine benchmarks below are meant to measure.
func benchEngineStore(b *testing.B, engine string, n int) *replication.Store {
	b.Helper()
	s, err := replication.OpenStore(b.TempDir(), replication.PersistOptions{Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	for i := 0; i < n; i++ {
		s.Insert(replication.Item{Key: FloatKey(float64(i) / float64(n)), Value: fmt.Sprintf("v%d", i)})
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	return s
}

// engineBenchKinds are the storage engines the Engine* benchmarks compare.
var engineBenchKinds = []string{"mem", "disk"}

// BenchmarkEnginePut measures the store's write path per engine: an insert
// re-stamping a bounded key set (so per-op cost stays flat) on top of a
// 20k-pair resident store.
func BenchmarkEnginePut(b *testing.B) {
	for _, engine := range engineBenchKinds {
		b.Run(engine, func(b *testing.B) {
			s := benchEngineStore(b, engine, 20000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(replication.Item{Key: FloatKey(float64(i%4096) / 4096), Value: fmt.Sprintf("w%d", i%64)})
			}
		})
	}
}

// BenchmarkEngineGet measures exact-key lookups against a 20k-pair store —
// for the disk engine, a memtable miss resolving through the segment
// sparse indexes.
func BenchmarkEngineGet(b *testing.B) {
	for _, engine := range engineBenchKinds {
		b.Run(engine, func(b *testing.B) {
			const n = 20000
			s := benchEngineStore(b, engine, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.Lookup(FloatKey(float64(i%n) / n)); len(got) == 0 {
					b.Fatal("lookup missed a preloaded pair")
				}
			}
		})
	}
}

// BenchmarkEngineScanPrefix measures a range ("shower") scan streaming
// roughly 1/16th of a 20k-pair store through the engine iterator.
func BenchmarkEngineScanPrefix(b *testing.B) {
	for _, engine := range engineBenchKinds {
		b.Run(engine, func(b *testing.B) {
			s := benchEngineStore(b, engine, 20000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count := 0
				s.ScanRange(keyspace.NewRange(FloatKey(0.25), FloatKey(0.3125)), func(replication.Item) bool {
					count++
					return true
				})
				if count == 0 {
					b.Fatal("scan yielded nothing")
				}
			}
		})
	}
}

// BenchmarkEngineRecoverLarge measures reopening a checkpointed 50k-pair
// store. The mem engine replays every pair into memory; the disk engine
// adopts the snapshot's segment manifest and digest cells without scanning
// the pairs, so its recovery time stays flat as stores grow to millions of
// keys.
func BenchmarkEngineRecoverLarge(b *testing.B) {
	for _, engine := range engineBenchKinds {
		b.Run(engine, func(b *testing.B) {
			const n = 50000
			dir := b.TempDir()
			opts := replication.PersistOptions{Engine: engine}
			s, err := replication.OpenStore(dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				s.Insert(replication.Item{Key: FloatKey(float64(i) / n), Value: fmt.Sprintf("v%d", i)})
			}
			if err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := replication.OpenStore(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != n {
					b.Fatalf("recovered %d pairs, want %d", r.Len(), n)
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
