package pgrid

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRE matches inline markdown links [text](target).
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeadingRE matches ATX headings.
var mdHeadingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// slugify renders a heading as a GitHub-style anchor.
func slugify(h string) string {
	h = strings.ToLower(h)
	// Inline code/emphasis markers disappear from anchors.
	h = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf returns the heading anchors of a markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	anchors := make(map[string]bool)
	for _, m := range mdHeadingRE.FindAllStringSubmatch(string(data), -1) {
		anchors[slugify(m[1])] = true
	}
	return anchors
}

// TestMarkdownLinks validates the repository documentation: every relative
// link in README.md, ROADMAP.md and docs/ must point at an existing file
// (or directory), and every fragment must resolve to a heading anchor in
// its target. External links are left to reviewers — this guard is about
// the docs never rotting against the repo itself.
func TestMarkdownLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md"}
	docEntries, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docEntries...)
	if len(docEntries) == 0 {
		t.Error("docs/ holds no markdown files; the architecture documentation went missing")
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			rel, frag, _ := strings.Cut(target, "#")
			resolved := file // pure-fragment links resolve within the same file
			if rel != "" {
				resolved = filepath.Join(filepath.Dir(file), rel)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken relative link %q (%v)", file, target, err)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(t, resolved)[frag] {
					t.Errorf("%s: link %q points at a missing anchor #%s in %s", file, target, frag, resolved)
				}
			}
		}
	}
}
