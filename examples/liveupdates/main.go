// Liveupdates: build an overlay once, then keep writing to it — routed
// inserts and deletes with quorum acknowledgement, background anti-entropy
// maintenance spreading every write to all replicas, and churn healed
// without a re-Build.
//
// Run with:
//
//	go run ./examples/liveupdates
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"pgrid"
)

func main() {
	ctx := context.Background()

	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(32),
		pgrid.WithMaxKeys(12),
		pgrid.WithMinReplicas(3),
		pgrid.WithWriteQuorum(2),
		pgrid.WithMaintenanceInterval(10*time.Millisecond),
		// Bound tombstone lifetime: deletes older than the horizon are
		// compacted away, and the digest/delta anti-entropy protocol keeps
		// replicas converged without retransmitting the full data set.
		pgrid.WithTombstoneGC(time.Minute, 0),
		pgrid.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Seed the index and construct the overlay once.
	for i := 0; i < 120; i++ {
		if err := cluster.IndexString(fmt.Sprintf("term-%03d", i), fmt.Sprintf("doc-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	report, err := cluster.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("construction:", report)

	// Background maintenance keeps replicas converged from here on.
	cluster.StartMaintenance()
	defer cluster.StopMaintenance()

	// A live write is routed to the responsible partition and fanned out to
	// its replicas; the report carries the quorum acknowledgement.
	rep, err := cluster.InsertString(ctx, "streaming", "doc-live-1")
	if err != nil && !errors.Is(err, pgrid.ErrNoQuorum) {
		log.Fatal(err)
	}
	fmt.Printf("insert 'streaming': %d/%d replicas acked in %d hop(s)\n", rep.Acks, rep.Replicas, rep.Hops)

	hits, err := cluster.SearchString(ctx, "streaming")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-your-write: %d hit(s)\n", len(hits))

	// A delete tombstones the pair at every replica, so maintenance spreads
	// the removal instead of resurrecting the item.
	if _, err := cluster.DeleteString(ctx, "streaming", "doc-live-1"); err != nil && !errors.Is(err, pgrid.ErrNoQuorum) {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let a few maintenance ticks run
	switch hits, err := cluster.SearchString(ctx, "streaming"); {
	case err != nil:
		log.Fatalf("search after delete failed: %v", err)
	case len(hits) == 0:
		fmt.Println("after delete + maintenance: item gone everywhere")
	default:
		fmt.Printf("after delete: unexpected hits %v\n", hits)
	}

	// Churn: take a slice of peers offline, write while they are away, and
	// let maintenance catch them up when they return — no re-Build.
	for i := 0; i < 8; i++ {
		cluster.SetOnline(i, false)
	}
	if _, err := cluster.InsertString(ctx, "churned", "doc-live-2"); err != nil && !errors.Is(err, pgrid.ErrNoQuorum) {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		cluster.SetOnline(i, true)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		hits, err := cluster.SearchString(ctx, "churned")
		if err == nil && len(hits) > 0 {
			fmt.Printf("write during churn readable after returning peers caught up: %d hit(s)\n", len(hits))
			printSyncStats(cluster)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("write during churn did not become readable in time")
	printSyncStats(cluster)
}

// printSyncStats shows how the maintenance traffic split across the
// digest/delta protocol's outcomes: in steady state almost every round is a
// constant-cost digest match, and only divergent replicas pay for content.
func printSyncStats(cluster *pgrid.Cluster) {
	var insync, delta, full float64
	for i := 0; i < cluster.Peers(); i++ {
		m := &cluster.Peer(i).Metrics
		insync += m.SyncsInSync.Value()
		delta += m.SyncsDelta.Value()
		full += m.SyncsFull.Value()
	}
	fmt.Printf("anti-entropy rounds: %.0f in-sync (digest only), %.0f delta, %.0f full\n", insync, delta, full)
}
