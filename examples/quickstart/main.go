// Quickstart: build a small P-Grid overlay over a handful of indexed terms
// and run exact-match and range queries against it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pgrid"
)

func main() {
	ctx := context.Background()

	// A cluster of 32 in-process peers with the paper's default
	// load-balancing parameters scaled down for a small data set.
	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(32),
		pgrid.WithMaxKeys(12),
		pgrid.WithMinReplicas(2),
		pgrid.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Index a few (term, document) postings. Keys preserve lexicographic
	// order, so related terms end up in nearby partitions.
	postings := map[string][]string{
		"database":  {"doc-1", "doc-4", "doc-9"},
		"datalog":   {"doc-2"},
		"index":     {"doc-1", "doc-3"},
		"overlay":   {"doc-5", "doc-6"},
		"partition": {"doc-7"},
		"peer":      {"doc-5", "doc-8"},
		"query":     {"doc-3", "doc-9"},
		"replica":   {"doc-6"},
		"routing":   {"doc-2", "doc-7"},
		"trie":      {"doc-8"},
	}
	for term, docs := range postings {
		for _, doc := range docs {
			if err := cluster.IndexString(term, doc); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Construct the overlay from scratch: replication followed by parallel,
	// randomized key-space bisection.
	report, err := cluster.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("construction:", report)

	// Exact-match search.
	hits, err := cluster.SearchString(ctx, "database")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search 'database': %d hit(s)\n", len(hits))
	for _, h := range hits {
		fmt.Printf("  %s (resolved in %d hop(s))\n", h.Value, h.Hops)
	}

	// Range (prefix-style) search: every term in ["data", "datb").
	rangeHits, err := cluster.SearchStringRange(ctx, "data", "datb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terms starting with 'data': %d posting(s)\n", len(rangeHits))
	for _, h := range rangeHits {
		fmt.Printf("  %s\n", h.Value)
	}
}
