// Re-indexing: the scenario from the paper's introduction. A document
// collection is first indexed by title terms; later the application decides
// to index by author instead (a new text-extraction function), so a brand
// new overlay must be constructed from scratch — which is exactly the
// operation the paper's parallel construction algorithm makes cheap.
//
// Run with:
//
//	go run ./examples/reindex
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"pgrid"
)

// document is a tiny bibliographic record.
type document struct {
	ID      string
	Title   string
	Authors []string
}

func collection() []document {
	return []document{
		{"d01", "indexing data oriented overlay networks", []string{"aberer", "datta", "hauswirth", "schmidt"}},
		{"d02", "a scalable content addressable network", []string{"ratnasamy", "francis", "handley", "karp", "shenker"}},
		{"d03", "chord a scalable peer to peer lookup service", []string{"stoica", "morris", "karger", "kaashoek", "balakrishnan"}},
		{"d04", "pastry scalable distributed object location", []string{"rowstron", "druschel"}},
		{"d05", "online balancing of range partitioned data", []string{"ganesan", "bawa", "garcia-molina"}},
		{"d06", "the power of two choices in randomized load balancing", []string{"mitzenmacher"}},
		{"d07", "balanced binary trees for id management", []string{"manku"}},
		{"d08", "p grid a self organizing access structure", []string{"aberer"}},
		{"d09", "gridvine building internet scale semantic overlay networks", []string{"aberer", "cudre-mauroux", "hauswirth", "van pelt"}},
		{"d10", "the piazza peer data management system", []string{"halevy", "ives", "madhavan", "mork", "suciu", "tatarinov"}},
		{"d11", "simple load balancing for distributed hash tables", []string{"byers", "considine", "mitzenmacher"}},
		{"d12", "fast construction of overlay networks", []string{"angluin", "aspnes", "chen", "wu", "yin"}},
	}
}

// buildIndex constructs a fresh overlay whose keys are produced by the given
// extraction function.
func buildIndex(ctx context.Context, docs []document, extract func(document) []string, seed int64) (*pgrid.Cluster, pgrid.BuildReport, error) {
	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(24),
		pgrid.WithMaxKeys(10),
		pgrid.WithMinReplicas(2),
		pgrid.WithSeed(seed),
	)
	if err != nil {
		return nil, pgrid.BuildReport{}, err
	}
	for _, d := range docs {
		for _, term := range extract(d) {
			if err := cluster.IndexString(term, d.ID); err != nil {
				return nil, pgrid.BuildReport{}, err
			}
		}
	}
	report, err := cluster.Build(ctx)
	return cluster, report, err
}

func main() {
	ctx := context.Background()
	docs := collection()

	// First indexing pass: by title terms.
	byTitle := func(d document) []string {
		var terms []string
		for _, w := range strings.Fields(d.Title) {
			if len(w) > 3 {
				terms = append(terms, w)
			}
		}
		return terms
	}
	start := time.Now()
	titleIndex, report, err := buildIndex(ctx, docs, byTitle, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("title index built in %v: %s\n", time.Since(start).Round(time.Millisecond), report)
	hits, err := titleIndex.SearchString(ctx, "overlay")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("documents with 'overlay' in the title: %s\n", values(hits))

	// Requirements changed: retrieval should now work by author. The index
	// keys change completely, so a new overlay is constructed from scratch
	// (the old one simply stays around until it is dropped).
	byAuthor := func(d document) []string { return d.Authors }
	start = time.Now()
	authorIndex, report2, err := buildIndex(ctx, docs, byAuthor, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("author index rebuilt in %v: %s\n", time.Since(start).Round(time.Millisecond), report2)

	for _, author := range []string{"aberer", "mitzenmacher", "karger"} {
		hits, err := authorIndex.SearchString(ctx, author)
		if err != nil {
			fmt.Printf("papers by %-14s -> query failed: %v\n", author, err)
			continue
		}
		fmt.Printf("papers by %-14s -> %s\n", author, values(hits))
	}

	// The order-preserving keys also give us author prefix scans for free.
	prefixHits, err := authorIndex.SearchStringRange(ctx, "ka", "kb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authors starting with 'ka': %s\n", values(prefixHits))
}

func values(hits []pgrid.SearchHit) string {
	if len(hits) == 0 {
		return "(none)"
	}
	seen := map[string]bool{}
	var out []string
	for _, h := range hits {
		if !seen[h.Value] {
			seen[h.Value] = true
			out = append(out, h.Value)
		}
	}
	return strings.Join(out, ", ")
}
