// Inverted index: the peer-to-peer information-retrieval scenario that
// motivates the paper (the Alvis search engine). A synthetic document
// collection with a Zipf-distributed vocabulary is spread over many peers;
// the cluster builds a distributed inverted file from scratch and answers
// keyword queries, including under churn.
//
// Run with:
//
//	go run ./examples/invertedindex
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pgrid"
	"pgrid/internal/workload"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	// Generate a synthetic corpus standing in for the Alvis collection.
	corpusCfg := workload.DefaultCorpusConfig()
	corpusCfg.VocabularySize = 2000
	corpusCfg.TermsPerDocument = 12
	corpus := workload.NewTextCorpus(corpusCfg)
	docs := corpus.Documents(300, rng)
	postings := corpus.Postings(docs)
	fmt.Printf("corpus: %d documents, %d postings, %d terms\n", len(docs), len(postings), corpusCfg.VocabularySize)

	// A cluster of 64 peers holds the distributed inverted file.
	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(64),
		pgrid.WithMaxKeys(120),
		pgrid.WithMinReplicas(3),
		pgrid.WithRoutingRedundancy(4),
		pgrid.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range postings {
		if err := cluster.IndexString(p.Term, p.Doc); err != nil {
			log.Fatal(err)
		}
	}

	report, err := cluster.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay construction:", report)

	// Keyword search for a few frequent and a few rare terms.
	queryTerms := []string{corpus.Term(0), corpus.Term(5), corpus.Term(100), corpus.Term(1500)}
	for _, term := range queryTerms {
		hits, err := cluster.SearchString(ctx, term)
		if err != nil {
			fmt.Printf("  %-12s -> query failed: %v\n", term, err)
			continue
		}
		fmt.Printf("  %-12s -> %3d matching document(s), %d hop(s)\n", term, len(hits), hops(hits))
	}

	// Simulate churn: a quarter of the peers goes offline; replication and
	// redundant routing references keep the index usable.
	for i := 0; i < cluster.Peers()/4; i++ {
		cluster.SetOnline(i, false)
	}
	fmt.Printf("churn: %d of %d peers offline\n", cluster.Peers()-cluster.OnlinePeers(), cluster.Peers())
	success := 0
	const attempts = 50
	for i := 0; i < attempts; i++ {
		term := corpus.Term(rng.Intn(200))
		if hits, err := cluster.SearchString(ctx, term); err == nil && len(hits) >= 0 {
			success++
		}
	}
	fmt.Printf("query success under churn: %d/%d\n", success, attempts)
}

func hops(hits []pgrid.SearchHit) int {
	if len(hits) == 0 {
		return 0
	}
	return hits[0].Hops
}
