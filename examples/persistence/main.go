// Persistence: durable replica state and crash recovery. The cluster runs
// with WithPersistence, so every peer's store — items, delete tombstones,
// logical clock, GC floor, partition path, routing references and
// anti-entropy sync baselines — is captured by a CRC-framed write-ahead
// log plus periodic snapshots. The example kills and restarts peers
// mid-workload and shows that reads keep succeeding and that the restarted
// peers rejoin through the cheap exact-delta sync path (no full rebuild).
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pgrid"
)

func main() {
	ctx := context.Background()

	// Durable state lives here; a real deployment would point this at a
	// persistent volume and reuse it across process restarts.
	dir, err := os.MkdirTemp("", "pgrid-persistence-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(16),
		pgrid.WithMaxKeys(10),
		pgrid.WithMinReplicas(2),
		pgrid.WithPersistence(dir),
		pgrid.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Index, construct, and let maintenance record durable sync baselines.
	terms := []string{"database", "datalog", "overlay", "network", "index", "replica", "quorum", "journal"}
	for _, term := range terms {
		if err := cluster.IndexString(term, "doc-"+term); err != nil {
			log.Fatal(err)
		}
	}
	report, err := cluster.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", report)
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}

	// A live write after construction — it must survive the crash too.
	if _, err := cluster.InsertString(ctx, "durability", "doc-durability"); err != nil {
		fmt.Println("insert:", err)
	}
	for i := 0; i < 2; i++ {
		cluster.MaintenanceRound(ctx)
	}

	// Kill and restart a quarter of the cluster. Each restarted peer
	// reopens its WAL + snapshot directory, replays its state, and rejoins
	// its partition with its routing table and sync baselines intact.
	restarted := []int{1, 5, 9, 13}
	fmt.Printf("restarting peers %v ...\n", restarted)
	for _, i := range restarted {
		if err := cluster.RestartPeer(i); err != nil {
			log.Fatal(err)
		}
		p := cluster.Peer(i)
		fmt.Printf("  peer %2d recovered: path=%q items=%d replicas=%d\n",
			i, p.Path(), p.Store().Len(), len(p.Replicas()))
	}
	for i := 0; i < 3; i++ {
		cluster.MaintenanceRound(ctx)
	}

	// Reads survive the restarts.
	ok := 0
	for _, term := range append(terms, "durability") {
		hits, err := cluster.SearchString(ctx, term)
		if err == nil && len(hits) > 0 {
			ok++
		} else {
			fmt.Printf("  MISS %q: err=%v\n", term, err)
		}
	}
	fmt.Printf("reads after restart: %d/%d terms found\n", ok, len(terms)+1)

	// And the rejoins ran through the cheap paths: in-sync or exact delta,
	// never a full-set rebuild.
	for _, i := range restarted {
		p := cluster.Peer(i)
		fmt.Printf("  peer %2d post-restart syncs: in-sync=%.0f delta=%.0f full=%.0f\n",
			i, p.Metrics.SyncsInSync.Value(), p.Metrics.SyncsDelta.Value(), p.Metrics.SyncsFull.Value())
	}
}
