// Range queries: the peer-to-peer data-management scenario. Sensor-style
// tuples with a skewed numeric attribute are indexed without hashing, so the
// overlay's order-preserving trie can answer range predicates directly —
// exactly what uniform-hashing DHTs cannot do.
//
// Run with:
//
//	go run ./examples/rangequery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pgrid"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))

	cluster, err := pgrid.NewCluster(
		pgrid.WithPeers(48),
		pgrid.WithMaxKeys(60),
		pgrid.WithMinReplicas(3),
		pgrid.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Index 1000 temperature readings. The distribution is skewed (most
	// readings cluster around 21°C), which is what makes order-preserving
	// indexing hard and load balancing necessary.
	const readings = 1000
	for i := 0; i < readings; i++ {
		temp := 21 + rng.NormFloat64()*2.5
		if rng.Float64() < 0.05 {
			temp = 60 + rng.Float64()*30 // occasional sensor fault
		}
		normalized := clamp(temp/100, 0, 0.999)
		value := fmt.Sprintf("sensor-%03d/reading-%04d/%.1fC", rng.Intn(40), i, temp)
		if err := cluster.IndexFloat(normalized, value); err != nil {
			log.Fatal(err)
		}
	}

	report, err := cluster.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("construction:", report)

	// Range predicate: readings between 19°C and 23°C.
	lo, hi := pgrid.FloatKey(19.0/100), pgrid.FloatKey(23.0/100)
	hits, err := cluster.SearchRange(ctx, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readings in [19C, 23C): %d\n", len(hits))

	// Outlier detection: everything at or above 50°C.
	outliers, err := cluster.SearchRange(ctx, pgrid.FloatKey(50.0/100), pgrid.FloatKey(0.999))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readings >= 50C (faults): %d\n", len(outliers))
	for i, h := range outliers {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(outliers)-5)
			break
		}
		fmt.Printf("  %s\n", h.Value)
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
