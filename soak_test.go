package pgrid

import (
	"context"
	"fmt"
	"os"
	"testing"
)

// TestSoakMaintenanceBandwidthFlat is the write+delete soak behind the
// digest/delta anti-entropy work: as lifetime deletes grow 10×, the legacy
// full-set exchange's maintenance bytes-per-tick grow with them (every tick
// retransmits the ever-growing tombstone set), while the digest protocol's
// stay approximately flat and the tombstone GC bounds the metadata itself.
//
// The nightly workflow runs the long variant (PGRID_SOAK=1) with another 10×
// of lifetime deletes on top.
func TestSoakMaintenanceBandwidthFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ctx := context.Background()
	peers, items := 24, 100
	epochs := []int{30, 300}
	if os.Getenv("PGRID_SOAK") != "" {
		peers, items = 48, 240
		epochs = []int{30, 300, 3000}
	}

	build := func(opts ...Option) *Cluster {
		base := []Option{
			WithPeers(peers),
			WithMaxKeys(20),
			WithMinReplicas(2),
			WithRoutingRedundancy(4),
			WithSeed(42),
		}
		c, err := NewCluster(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < items; j++ {
			if err := c.Index(FloatKey(float64(j)/float64(items)), fmt.Sprintf("v%d", j)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Build(ctx); err != nil {
			t.Fatal(err)
		}
		return c
	}
	// The version horizon is sized to the soak's write volume: long enough
	// that every replica syncs within it, short enough that the bulk of the
	// lifetime tombstones is pruned by the end of the run.
	full := build(WithFullSyncAntiEntropy())
	digest := build(WithTombstoneGC(0, 24))

	maintBytes := func(c *Cluster) float64 {
		var total float64
		for i := 0; i < c.Peers(); i++ {
			total += c.Peer(i).Metrics.MaintenanceBytes.Value()
		}
		return total
	}
	tombstones := func(c *Cluster) int {
		n := 0
		for i := 0; i < c.Peers(); i++ {
			n += c.Peer(i).Store().TombstoneCount()
		}
		return n
	}
	bytesPerTick := func(c *Cluster) float64 {
		const measure = 8
		for i := 0; i < 4; i++ {
			c.MaintenanceRound(ctx) // converge before measuring steady state
		}
		start := maintBytes(c)
		for i := 0; i < measure; i++ {
			c.MaintenanceRound(ctx)
		}
		return (maintBytes(c) - start) / measure
	}

	done := 0
	type sample struct {
		deletes   int
		full, dig float64
		fullTombs int
		gcTombs   int
	}
	var samples []sample
	for _, target := range epochs {
		for ; done < target; done++ {
			key := FloatKey((float64(done%items) + 0.37) / float64(items))
			val := fmt.Sprintf("churn-%d", done)
			for _, c := range []*Cluster{full, digest} {
				_, _ = c.Insert(ctx, key, val)
				_, _ = c.Delete(ctx, key, val)
				if done%50 == 49 {
					c.MaintenanceRound(ctx)
				}
			}
		}
		samples = append(samples, sample{
			deletes: done,
			full:    bytesPerTick(full), dig: bytesPerTick(digest),
			fullTombs: tombstones(full), gcTombs: tombstones(digest),
		})
	}
	for _, s := range samples {
		t.Logf("deletes=%d full=%.0f B/tick digest=%.0f B/tick tombstones full=%d gc=%d",
			s.deletes, s.full, s.dig, s.fullTombs, s.gcTombs)
	}

	first, last := samples[0], samples[len(samples)-1]
	digestGrowth := last.dig / first.dig
	fullGrowth := last.full / first.full
	// The digest protocol must stay ~flat across a 10× delete growth; the
	// margins are generous so scheduler noise cannot flake the build.
	if digestGrowth > 1.75 {
		t.Errorf("digest maintenance grew %.2fx across a 10x delete growth; want ~flat", digestGrowth)
	}
	// The legacy exchange must show the linear growth the digest protocol
	// eliminates, and clearly outgrow it.
	if fullGrowth < 2 {
		t.Errorf("full-set maintenance grew only %.2fx; the baseline should grow with lifetime deletes", fullGrowth)
	}
	if fullGrowth < 1.5*digestGrowth {
		t.Errorf("full-set growth %.2fx not clearly above digest growth %.2fx", fullGrowth, digestGrowth)
	}
	// The GC horizon must bound tombstone metadata well below the
	// keep-forever baseline.
	if last.gcTombs*2 >= last.fullTombs {
		t.Errorf("GC held %d tombstones vs %d without GC; want less than half", last.gcTombs, last.fullTombs)
	}
}
