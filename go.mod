module pgrid

go 1.22
